//! Pairwise SWAP channels.

use serde::{Deserialize, Serialize};

use crate::units::AccountingUnits;

/// Channel thresholds (paper Fig. 2: debts accumulate until "the debt on one
/// side hits a threshold", after which the creditor is compensated or the
/// pair waits for amortization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelConfig {
    /// Debt level at which the debtor should settle in BZZ.
    pub payment_threshold: AccountingUnits,
    /// Debt level at which the creditor refuses further service. Must be at
    /// least the payment threshold.
    pub disconnect_threshold: AccountingUnits,
    /// Accounting units forgiven per channel per tick (time-based
    /// amortization rate — Swarm's free-bandwidth allowance).
    pub refresh_rate: AccountingUnits,
}

impl ChannelConfig {
    /// A configuration with effectively unlimited thresholds, letting debts
    /// grow without forced settlement (useful for measuring raw traffic).
    pub fn unlimited() -> Self {
        Self {
            payment_threshold: AccountingUnits(i64::MAX / 4),
            disconnect_threshold: AccountingUnits(i64::MAX / 2),
            refresh_rate: AccountingUnits::ZERO,
        }
    }
}

impl Default for ChannelConfig {
    /// Defaults loosely modelled on bee's ratios: payment threshold 10 000
    /// units, disconnect at 1.25× that, refresh 1 000 units per tick.
    fn default() -> Self {
        Self {
            payment_threshold: AccountingUnits(10_000),
            disconnect_threshold: AccountingUnits(12_500),
            refresh_rate: AccountingUnits(1_000),
        }
    }
}

/// Result of recording a service on a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BalanceOutcome {
    /// Debt stays within the payment threshold.
    WithinLimits,
    /// The debtor's debt reached the payment threshold; settlement is due.
    PaymentDue {
        /// Current debt of the consumer toward the server.
        debt: AccountingUnits,
    },
}

/// A SWAP channel between two peers `a < b` (ordering fixed by the caller).
///
/// The balance is kept from `a`'s perspective: positive means **b owes a**
/// (a served more than it consumed), negative means a owes b. Both peers
/// start at zero (paper Fig. 2, step 0).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Channel {
    balance: AccountingUnits,
    /// Total units forgiven by amortization over the channel's lifetime.
    amortized: AccountingUnits,
    /// Total units settled in BZZ over the channel's lifetime.
    settled: AccountingUnits,
    /// Whether the owning [`SwapNetwork`](crate::SwapNetwork) currently
    /// tracks this channel in its nonzero-balance index. Maintained by the
    /// network, not the channel.
    hot: bool,
}

impl Channel {
    /// A fresh channel with zero balance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Balance from `a`'s perspective (positive: b owes a).
    #[inline]
    pub fn balance(&self) -> AccountingUnits {
        self.balance
    }

    /// Lifetime units forgiven by time-based amortization.
    #[inline]
    pub fn amortized_total(&self) -> AccountingUnits {
        self.amortized
    }

    /// Lifetime units settled in BZZ.
    #[inline]
    pub fn settled_total(&self) -> AccountingUnits {
        self.settled
    }

    /// Whether the channel sits in its network's nonzero-balance index.
    #[inline]
    pub(crate) fn is_hot(&self) -> bool {
        self.hot
    }

    /// Marks index membership (see [`Channel::is_hot`]).
    #[inline]
    pub(crate) fn set_hot(&mut self, hot: bool) {
        self.hot = hot;
    }

    /// Records that `a` served `amount` of bandwidth to `b` (b's debt toward
    /// a grows). Pass a negative view by calling [`Channel::record_b_serves`]
    /// instead.
    pub fn record_a_serves(
        &mut self,
        amount: AccountingUnits,
        config: &ChannelConfig,
    ) -> BalanceOutcome {
        self.balance = self.balance.saturating_add(amount);
        self.outcome(config)
    }

    /// Records that `b` served `amount` of bandwidth to `a`.
    pub fn record_b_serves(
        &mut self,
        amount: AccountingUnits,
        config: &ChannelConfig,
    ) -> BalanceOutcome {
        self.balance = self.balance.saturating_add(-amount);
        self.outcome(config)
    }

    /// Whether the debtor (if any) has hit the disconnect threshold, i.e.
    /// the creditor refuses service until settlement.
    pub fn is_frozen(&self, config: &ChannelConfig) -> bool {
        self.balance.abs() >= config.disconnect_threshold
    }

    fn outcome(&self, config: &ChannelConfig) -> BalanceOutcome {
        if self.balance.abs() >= config.payment_threshold {
            BalanceOutcome::PaymentDue {
                debt: self.balance.abs(),
            }
        } else {
            BalanceOutcome::WithinLimits
        }
    }

    /// Applies one tick of time-based amortization: the balance moves toward
    /// zero by at most `config.refresh_rate`. Returns the amount forgiven.
    pub fn amortize(&mut self, config: &ChannelConfig) -> AccountingUnits {
        let magnitude = self.balance.abs().raw().min(config.refresh_rate.raw());
        let forgiven = AccountingUnits(magnitude);
        if self.balance.raw() > 0 {
            self.balance -= forgiven;
        } else {
            self.balance += forgiven;
        }
        self.amortized += forgiven;
        forgiven
    }

    /// Settles the outstanding debt in full: the balance returns to zero and
    /// the settled amount is recorded. Returns the absolute amount settled
    /// and the direction (`true` if b paid a).
    pub fn settle(&mut self) -> (AccountingUnits, bool) {
        let amount = self.balance.abs();
        let b_paid_a = self.balance.raw() > 0;
        self.settled += amount;
        self.balance = AccountingUnits::ZERO;
        (amount, b_paid_a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(pay: i64, disc: i64, refresh: i64) -> ChannelConfig {
        ChannelConfig {
            payment_threshold: AccountingUnits(pay),
            disconnect_threshold: AccountingUnits(disc),
            refresh_rate: AccountingUnits(refresh),
        }
    }

    #[test]
    fn service_moves_balance_both_ways() {
        let cfg = config(100, 120, 0);
        let mut ch = Channel::new();
        assert_eq!(
            ch.record_a_serves(AccountingUnits(30), &cfg),
            BalanceOutcome::WithinLimits
        );
        assert_eq!(ch.balance(), AccountingUnits(30));
        ch.record_b_serves(AccountingUnits(50), &cfg);
        assert_eq!(ch.balance(), AccountingUnits(-20));
    }

    #[test]
    fn payment_due_at_threshold() {
        let cfg = config(40, 100, 0);
        let mut ch = Channel::new();
        assert_eq!(
            ch.record_a_serves(AccountingUnits(39), &cfg),
            BalanceOutcome::WithinLimits
        );
        assert_eq!(
            ch.record_a_serves(AccountingUnits(1), &cfg),
            BalanceOutcome::PaymentDue {
                debt: AccountingUnits(40)
            }
        );
        // Debt in the other direction also triggers.
        let mut ch2 = Channel::new();
        assert_eq!(
            ch2.record_b_serves(AccountingUnits(45), &cfg),
            BalanceOutcome::PaymentDue {
                debt: AccountingUnits(45)
            }
        );
    }

    #[test]
    fn freeze_at_disconnect_threshold() {
        let cfg = config(40, 60, 0);
        let mut ch = Channel::new();
        ch.record_a_serves(AccountingUnits(59), &cfg);
        assert!(!ch.is_frozen(&cfg));
        ch.record_a_serves(AccountingUnits(1), &cfg);
        assert!(ch.is_frozen(&cfg));
    }

    #[test]
    fn amortization_decays_toward_zero_and_stops() {
        let cfg = config(1000, 2000, 25);
        let mut ch = Channel::new();
        ch.record_a_serves(AccountingUnits(60), &cfg);
        assert_eq!(ch.amortize(&cfg), AccountingUnits(25));
        assert_eq!(ch.balance(), AccountingUnits(35));
        ch.amortize(&cfg);
        assert_eq!(ch.amortize(&cfg), AccountingUnits(10));
        assert_eq!(ch.balance(), AccountingUnits::ZERO);
        // Fully amortized channels forgive nothing further.
        assert_eq!(ch.amortize(&cfg), AccountingUnits::ZERO);
        assert_eq!(ch.amortized_total(), AccountingUnits(60));
    }

    #[test]
    fn amortization_works_on_negative_balances() {
        let cfg = config(1000, 2000, 10);
        let mut ch = Channel::new();
        ch.record_b_serves(AccountingUnits(15), &cfg);
        ch.amortize(&cfg);
        assert_eq!(ch.balance(), AccountingUnits(-5));
        ch.amortize(&cfg);
        assert_eq!(ch.balance(), AccountingUnits::ZERO);
    }

    #[test]
    fn settle_zeroes_balance_and_reports_direction() {
        let cfg = config(10, 20, 0);
        let mut ch = Channel::new();
        ch.record_a_serves(AccountingUnits(14), &cfg);
        let (amount, b_paid_a) = ch.settle();
        assert_eq!(amount, AccountingUnits(14));
        assert!(b_paid_a);
        assert_eq!(ch.balance(), AccountingUnits::ZERO);
        assert_eq!(ch.settled_total(), AccountingUnits(14));

        ch.record_b_serves(AccountingUnits(7), &cfg);
        let (amount, b_paid_a) = ch.settle();
        assert_eq!(amount, AccountingUnits(7));
        assert!(!b_paid_a);
    }

    #[test]
    fn default_config_sane() {
        let cfg = ChannelConfig::default();
        assert!(cfg.disconnect_threshold > cfg.payment_threshold);
        let unlimited = ChannelConfig::unlimited();
        assert!(unlimited.payment_threshold > AccountingUnits(1_000_000));
    }
}
