//! All SWAP channels of an overlay, plus settlement plumbing.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use serde::{Deserialize, Serialize};

use fairswap_kademlia::NodeId;

use crate::channel::{BalanceOutcome, Channel, ChannelConfig};
use crate::cheque::{Chequebook, Settlement, SettlementLedger};
use crate::error::SwapError;
use crate::units::{AccountingUnits, Bzz};

/// Multiplicative mixer for `(usize, usize)` channel keys. The channel
/// map is probed two to three times per routed chunk, where the default
/// DoS-resistant SipHash is measurable overhead; node-pair keys from a
/// simulator need no adversarial resistance, and a fixed hasher also
/// makes map iteration order reproducible across runs (not that anything
/// may depend on it — every whole-map walk commutes or sorts).
#[derive(Debug, Clone, Default)]
pub struct PairHasher(u64);

impl Hasher for PairHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.write_u64(u64::from(byte));
        }
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        // fxhash-style: rotate to spread low-entropy keys, multiply by a
        // large odd constant to mix into the high bits the map indexes by.
        self.0 = (self.0.rotate_left(26) ^ value).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }
}

type ChannelMap = HashMap<(usize, usize), Channel, BuildHasherDefault<PairHasher>>;

/// The SWAP state of a whole network: one lazily-created [`Channel`] per
/// pair of peers that ever exchanged service, per-node chequebooks and
/// wallets, and the global [`SettlementLedger`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SwapNetwork {
    nodes: usize,
    config: ChannelConfig,
    /// Channels keyed by `(a, b)` with `a < b`.
    channels: ChannelMap,
    /// Keys of channels that may carry a nonzero balance (every channel
    /// with a nonzero balance is here; zero-balance members are pruned by
    /// [`SwapNetwork::tick`]). Amortization, due-settlement sweeps and
    /// departure settlement walk this set instead of every channel ever
    /// created — the difference between O(recent traffic) and O(history)
    /// per simulation step.
    hot: Vec<(usize, usize)>,
    chequebooks: Vec<Chequebook>,
    wallets: Vec<Bzz>,
    ledger: SettlementLedger,
    /// Units each node gave away for free via amortization (creditor side).
    amortized_given: Vec<AccountingUnits>,
    /// Units each node received for free via amortization (debtor side).
    amortized_received: Vec<AccountingUnits>,
}

impl SwapNetwork {
    /// Creates a SWAP network of `nodes` peers with the given channel
    /// configuration, zero-cost settlements and a large default wallet
    /// endowment.
    pub fn new(nodes: usize, config: ChannelConfig) -> Self {
        Self::with_ledger(nodes, config, SettlementLedger::with_tx_cost(Bzz::ZERO))
    }

    /// Creates a SWAP network with an explicit settlement ledger (e.g. with
    /// a non-zero per-transaction cost for §V overhead experiments).
    pub fn with_ledger(nodes: usize, config: ChannelConfig, ledger: SettlementLedger) -> Self {
        Self {
            nodes,
            config,
            // Pre-size for a few channels per node; long runs still grow,
            // but the early doubling rehashes disappear.
            channels: ChannelMap::with_capacity_and_hasher(nodes * 4, Default::default()),
            hot: Vec::new(),
            chequebooks: vec![Chequebook::new(); nodes],
            // Endow wallets generously; the paper does not model depletion.
            // 2^50 per node keeps even network-wide u64 sums overflow-free.
            wallets: vec![Bzz(1 << 50); nodes],
            ledger,
            amortized_given: vec![AccountingUnits::ZERO; nodes],
            amortized_received: vec![AccountingUnits::ZERO; nodes],
        }
    }

    /// Number of peers.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// The channel configuration.
    pub fn config(&self) -> &ChannelConfig {
        &self.config
    }

    fn check_pair(&self, x: NodeId, y: NodeId) -> Result<(usize, usize), SwapError> {
        for peer in [x, y] {
            if peer.index() >= self.nodes {
                return Err(SwapError::UnknownPeer {
                    peer,
                    nodes: self.nodes,
                });
            }
        }
        if x == y {
            return Err(SwapError::SelfChannel { peer: x });
        }
        Ok((x.index().min(y.index()), x.index().max(y.index())))
    }

    /// Records that `server` provided `amount` of bandwidth service to
    /// `consumer`, growing the consumer's debt.
    ///
    /// # Errors
    ///
    /// * [`SwapError::NonPositiveAmount`] for zero/negative amounts.
    /// * [`SwapError::UnknownPeer`] / [`SwapError::SelfChannel`] for bad
    ///   endpoints.
    /// * [`SwapError::Disconnected`] if the consumer's debt already reached
    ///   the disconnect threshold (the creditor refuses service).
    pub fn record_service(
        &mut self,
        consumer: NodeId,
        server: NodeId,
        amount: AccountingUnits,
    ) -> Result<BalanceOutcome, SwapError> {
        if amount.raw() <= 0 {
            return Err(SwapError::NonPositiveAmount { amount });
        }
        let key = self.check_pair(consumer, server)?;
        let channel = self.channels.entry(key).or_default();
        // Refuse service only when it would push an already-frozen debt
        // further in the same direction.
        let server_is_a = server.index() == key.0;
        let balance = channel.balance().raw();
        let debtor_owes = if server_is_a { balance } else { -balance };
        if debtor_owes >= self.config.disconnect_threshold.raw() {
            return Err(SwapError::Disconnected {
                debtor: consumer,
                creditor: server,
                debt: AccountingUnits(debtor_owes),
            });
        }
        let outcome = if server_is_a {
            channel.record_a_serves(amount, &self.config)
        } else {
            channel.record_b_serves(amount, &self.config)
        };
        if !channel.is_hot() {
            channel.set_hot(true);
            self.hot.push(key);
        }
        Ok(outcome)
    }

    /// How much `debtor` currently owes `creditor` (zero if the balance
    /// leans the other way or no channel exists).
    pub fn debt(&self, debtor: NodeId, creditor: NodeId) -> AccountingUnits {
        let Ok(key) = self.check_pair(debtor, creditor) else {
            return AccountingUnits::ZERO;
        };
        let Some(channel) = self.channels.get(&key) else {
            return AccountingUnits::ZERO;
        };
        let balance = channel.balance().raw();
        // balance > 0 means b owes a.
        let owed = if creditor.index() == key.0 {
            balance
        } else {
            -balance
        };
        AccountingUnits(owed.max(0))
    }

    /// Whether the pair's channel refuses further service from `creditor`.
    pub fn is_frozen(&self, debtor: NodeId, creditor: NodeId) -> bool {
        self.debt(debtor, creditor) >= self.config.disconnect_threshold
    }

    /// Applies one tick of time-based amortization to every channel with
    /// an outstanding balance. Returns the total units forgiven this tick.
    ///
    /// Walks the nonzero-balance index rather than every channel (a
    /// zero-balance channel amortizes nothing), pruning channels whose
    /// balance reached zero. All per-channel effects commute, so the walk
    /// order cannot influence results.
    pub fn tick(&mut self) -> AccountingUnits {
        let mut total = AccountingUnits::ZERO;
        let mut kept = 0;
        for idx in 0..self.hot.len() {
            let key = self.hot[idx];
            let channel = self.channels.get_mut(&key).expect("hot channels exist");
            let balance_before = channel.balance().raw();
            let forgiven = channel.amortize(&self.config);
            if !forgiven.is_zero() {
                total += forgiven;
                // Positive balance: b owed a, so a forgave and b received.
                let (a, b) = key;
                let (creditor, debtor) = if balance_before > 0 { (a, b) } else { (b, a) };
                self.amortized_given[creditor] += forgiven;
                self.amortized_received[debtor] += forgiven;
            }
            if channel.balance().raw() != 0 {
                self.hot[kept] = key;
                kept += 1;
            } else {
                channel.set_hot(false);
            }
        }
        self.hot.truncate(kept);
        total
    }

    /// Settles the full outstanding debt from `debtor` to `creditor` in BZZ:
    /// issues a cheque, moves wallet funds, records the settlement.
    ///
    /// # Errors
    ///
    /// * [`SwapError::UnknownPeer`] / [`SwapError::SelfChannel`].
    /// * [`SwapError::InsufficientFunds`] if the debtor's wallet cannot
    ///   cover the debt.
    ///
    /// Settling a zero debt is a no-op returning `None`.
    pub fn settle(
        &mut self,
        debtor: NodeId,
        creditor: NodeId,
    ) -> Result<Option<Settlement>, SwapError> {
        let key = self.check_pair(debtor, creditor)?;
        let debt = self.debt(debtor, creditor);
        if debt.is_zero() {
            return Ok(None);
        }
        let amount = Bzz::from_units(debt).expect("debt is non-negative");
        let wallet = self.wallets[debtor.index()];
        let remaining = wallet
            .checked_sub(amount)
            .ok_or(SwapError::InsufficientFunds {
                payer: debtor,
                balance: wallet,
                needed: amount,
            })?;
        self.wallets[debtor.index()] = remaining;
        self.wallets[creditor.index()] += amount;
        self.chequebooks[debtor.index()].issue(debtor, creditor, amount);
        let channel = self.channels.get_mut(&key).expect("debt implies channel");
        channel.settle();
        Ok(Some(self.ledger.record(debtor, creditor, debt)))
    }

    /// Directly transfers `amount` BZZ from `payer` to `payee` and records
    /// it in the ledger without touching channel balances. This is the
    /// "paid settlement for requests generated by the originator itself"
    /// path of the paper's Swarm model, where the originator pays the first
    /// hop immediately.
    ///
    /// # Errors
    ///
    /// Same endpoint and funds conditions as [`SwapNetwork::settle`].
    pub fn pay_direct(
        &mut self,
        payer: NodeId,
        payee: NodeId,
        units: AccountingUnits,
    ) -> Result<Option<Settlement>, SwapError> {
        self.check_pair(payer, payee)?;
        if units.raw() <= 0 {
            return Ok(None);
        }
        let amount = Bzz::from_units(units).expect("positive units");
        let wallet = self.wallets[payer.index()];
        let remaining = wallet
            .checked_sub(amount)
            .ok_or(SwapError::InsufficientFunds {
                payer,
                balance: wallet,
                needed: amount,
            })?;
        self.wallets[payer.index()] = remaining;
        self.wallets[payee.index()] += amount;
        self.chequebooks[payer.index()].issue(payer, payee, amount);
        Ok(Some(self.ledger.record(payer, payee, units)))
    }

    /// Settles every channel whose debt reached the payment threshold.
    /// Returns the settlements performed.
    ///
    /// # Errors
    ///
    /// Propagates [`SwapError::InsufficientFunds`] from individual
    /// settlements; earlier settlements in the sweep remain applied.
    pub fn settle_due(&mut self) -> Result<Vec<Settlement>, SwapError> {
        // A due balance is nonzero, so the hot index covers every
        // candidate without touching settled history.
        let due: Vec<(usize, usize, bool)> = self
            .hot
            .iter()
            .filter_map(|&(a, b)| {
                let channel = &self.channels[&(a, b)];
                let balance = channel.balance();
                if balance.abs() >= self.config.payment_threshold {
                    // balance > 0: b owes a.
                    Some((a, b, balance.raw() > 0))
                } else {
                    None
                }
            })
            .collect();
        let mut settlements = Vec::with_capacity(due.len());
        for (a, b, b_owes_a) in due {
            let (debtor, creditor) = if b_owes_a {
                (NodeId(b), NodeId(a))
            } else {
                (NodeId(a), NodeId(b))
            };
            if let Some(s) = self.settle(debtor, creditor)? {
                settlements.push(s);
            }
        }
        Ok(settlements)
    }

    /// Settles every channel of `node` that carries outstanding debt, in
    /// both directions: `node` pays what it owes and collects what it is
    /// owed. This is the SWAP departure protocol for churn experiments —
    /// a leaving peer closes its chequebook against all counterparties so
    /// no balance is stranded on a dead channel.
    ///
    /// Counterparties are settled in ascending id order, so the settlement
    /// sequence is deterministic.
    ///
    /// # Errors
    ///
    /// * [`SwapError::UnknownPeer`] for out-of-range nodes.
    /// * [`SwapError::InsufficientFunds`] from individual settlements;
    ///   earlier settlements in the sweep remain applied.
    pub fn settle_node(&mut self, node: NodeId) -> Result<Vec<Settlement>, SwapError> {
        if node.index() >= self.nodes {
            return Err(SwapError::UnknownPeer {
                peer: node,
                nodes: self.nodes,
            });
        }
        // Outstanding debt means a nonzero balance, so the departing
        // node's channels of interest all sit in the hot index — the sweep
        // costs O(recently active channels), not O(every pair that ever
        // traded).
        let mut due: Vec<(NodeId, NodeId)> = self
            .hot
            .iter()
            .filter_map(|&(a, b)| {
                if a != node.index() && b != node.index() {
                    return None;
                }
                let balance = self.channels[&(a, b)].balance().raw();
                if balance == 0 {
                    return None;
                }
                // balance > 0 means b owes a.
                let (debtor, creditor) = if balance > 0 {
                    (NodeId(b), NodeId(a))
                } else {
                    (NodeId(a), NodeId(b))
                };
                Some((debtor, creditor))
            })
            .collect();
        due.sort_unstable();
        let mut settlements = Vec::with_capacity(due.len());
        for (debtor, creditor) in due {
            if let Some(settlement) = self.settle(debtor, creditor)? {
                settlements.push(settlement);
            }
        }
        Ok(settlements)
    }

    /// The settlement ledger.
    pub fn ledger(&self) -> &SettlementLedger {
        &self.ledger
    }

    /// The wallet balance of `node`.
    pub fn wallet(&self, node: NodeId) -> Bzz {
        self.wallets.get(node.index()).copied().unwrap_or(Bzz::ZERO)
    }

    /// The chequebook of `node`.
    pub fn chequebook(&self, node: NodeId) -> Option<&Chequebook> {
        self.chequebooks.get(node.index())
    }

    /// Units `node` gave away for free via amortization (as creditor).
    pub fn amortized_given(&self, node: NodeId) -> AccountingUnits {
        self.amortized_given
            .get(node.index())
            .copied()
            .unwrap_or(AccountingUnits::ZERO)
    }

    /// Units `node` consumed for free via amortization (as debtor).
    pub fn amortized_received(&self, node: NodeId) -> AccountingUnits {
        self.amortized_received
            .get(node.index())
            .copied()
            .unwrap_or(AccountingUnits::ZERO)
    }

    /// Number of channels that ever carried traffic.
    pub fn active_channels(&self) -> usize {
        self.channels.len()
    }

    /// Number of channels currently tracked as possibly carrying a
    /// balance (the amortization working set; pruned every tick).
    pub fn hot_channels(&self) -> usize {
        self.hot.len()
    }

    /// Net signed balance of each node across all its channels (positive:
    /// the network owes the node). The sum over all nodes is always zero.
    pub fn net_positions(&self) -> Vec<AccountingUnits> {
        let mut net = vec![AccountingUnits::ZERO; self.nodes];
        for (&(a, b), channel) in &self.channels {
            let balance = channel.balance();
            net[a] += balance;
            net[b] -= balance;
        }
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(pay: i64, disc: i64, refresh: i64) -> ChannelConfig {
        ChannelConfig {
            payment_threshold: AccountingUnits(pay),
            disconnect_threshold: AccountingUnits(disc),
            refresh_rate: AccountingUnits(refresh),
        }
    }

    #[test]
    fn hot_index_tracks_exactly_the_outstanding_balances() {
        let mut net = SwapNetwork::new(6, config(1000, 2000, 3));
        // Three pairs trade; all are hot.
        for (c, s, amount) in [(0usize, 1usize, 6i64), (2, 3, 3), (4, 5, 2)] {
            net.record_service(NodeId(c), NodeId(s), AccountingUnits(amount))
                .unwrap();
        }
        assert_eq!(net.hot_channels(), 3);
        // One tick forgives 3 per channel: two balances reach zero and
        // must drop out of the working set; the amounts still amortized.
        let forgiven = net.tick();
        assert_eq!(forgiven, AccountingUnits(3 + 3 + 2));
        assert_eq!(net.hot_channels(), 1);
        assert_eq!(net.debt(NodeId(0), NodeId(1)), AccountingUnits(3));
        // The settled-out pair trades again and re-enters the set.
        net.record_service(NodeId(2), NodeId(3), AccountingUnits(5))
            .unwrap();
        assert_eq!(net.hot_channels(), 2);
        // Every channel with a nonzero balance is always tracked.
        let nonzero = net
            .channels
            .values()
            .filter(|c| !c.balance().is_zero())
            .count();
        assert_eq!(net.hot_channels(), nonzero);
        assert_eq!(net.active_channels(), 3, "history is never dropped");
    }

    #[test]
    fn service_creates_debt_in_the_right_direction() {
        let mut net = SwapNetwork::new(4, config(100, 200, 0));
        net.record_service(NodeId(2), NodeId(1), AccountingUnits(10))
            .unwrap();
        assert_eq!(net.debt(NodeId(2), NodeId(1)), AccountingUnits(10));
        assert_eq!(net.debt(NodeId(1), NodeId(2)), AccountingUnits::ZERO);
        // Opposite service nets out.
        net.record_service(NodeId(1), NodeId(2), AccountingUnits(4))
            .unwrap();
        assert_eq!(net.debt(NodeId(2), NodeId(1)), AccountingUnits(6));
        assert_eq!(net.active_channels(), 1);
    }

    #[test]
    fn rejects_bad_endpoints_and_amounts() {
        let mut net = SwapNetwork::new(2, ChannelConfig::default());
        assert!(matches!(
            net.record_service(NodeId(0), NodeId(5), AccountingUnits(1)),
            Err(SwapError::UnknownPeer { .. })
        ));
        assert!(matches!(
            net.record_service(NodeId(0), NodeId(0), AccountingUnits(1)),
            Err(SwapError::SelfChannel { .. })
        ));
        assert!(matches!(
            net.record_service(NodeId(0), NodeId(1), AccountingUnits::ZERO),
            Err(SwapError::NonPositiveAmount { .. })
        ));
    }

    #[test]
    fn payment_due_then_settle() {
        let mut net = SwapNetwork::new(3, config(50, 500, 0));
        let outcome = net
            .record_service(NodeId(0), NodeId(1), AccountingUnits(60))
            .unwrap();
        assert_eq!(
            outcome,
            BalanceOutcome::PaymentDue {
                debt: AccountingUnits(60)
            }
        );
        let wallet_before = net.wallet(NodeId(1));
        let settlement = net.settle(NodeId(0), NodeId(1)).unwrap().unwrap();
        assert_eq!(settlement.amount, Bzz(60));
        assert_eq!(net.debt(NodeId(0), NodeId(1)), AccountingUnits::ZERO);
        assert_eq!(net.wallet(NodeId(1)), wallet_before + Bzz(60));
        assert_eq!(net.ledger().transaction_count(), 1);
        assert_eq!(
            net.chequebook(NodeId(0)).unwrap().cumulative_to(NodeId(1)),
            Bzz(60)
        );
        // Settling again is a no-op.
        assert!(net.settle(NodeId(0), NodeId(1)).unwrap().is_none());
    }

    #[test]
    fn disconnect_threshold_blocks_further_service() {
        let mut net = SwapNetwork::new(2, config(10, 30, 0));
        net.record_service(NodeId(0), NodeId(1), AccountingUnits(30))
            .unwrap();
        assert!(net.is_frozen(NodeId(0), NodeId(1)));
        assert!(matches!(
            net.record_service(NodeId(0), NodeId(1), AccountingUnits(1)),
            Err(SwapError::Disconnected { .. })
        ));
        // Service in the opposite direction is still allowed (reduces debt).
        net.record_service(NodeId(1), NodeId(0), AccountingUnits(5))
            .unwrap();
        assert_eq!(net.debt(NodeId(0), NodeId(1)), AccountingUnits(25));
    }

    #[test]
    fn tick_amortizes_and_attributes_free_service() {
        let mut net = SwapNetwork::new(2, config(1000, 2000, 7));
        net.record_service(NodeId(0), NodeId(1), AccountingUnits(10))
            .unwrap();
        let forgiven = net.tick();
        assert_eq!(forgiven, AccountingUnits(7));
        assert_eq!(net.debt(NodeId(0), NodeId(1)), AccountingUnits(3));
        assert_eq!(net.amortized_given(NodeId(1)), AccountingUnits(7));
        assert_eq!(net.amortized_received(NodeId(0)), AccountingUnits(7));
        net.tick();
        assert_eq!(net.debt(NodeId(0), NodeId(1)), AccountingUnits::ZERO);
        assert_eq!(net.amortized_given(NodeId(1)), AccountingUnits(10));
        // Nothing left to forgive.
        assert_eq!(net.tick(), AccountingUnits::ZERO);
    }

    #[test]
    fn settle_due_sweeps_only_ripe_channels() {
        let mut net = SwapNetwork::new(4, config(20, 100, 0));
        net.record_service(NodeId(0), NodeId(1), AccountingUnits(25))
            .unwrap();
        net.record_service(NodeId(2), NodeId(3), AccountingUnits(5))
            .unwrap();
        let settlements = net.settle_due().unwrap();
        assert_eq!(settlements.len(), 1);
        assert_eq!(settlements[0].payer, NodeId(0));
        assert_eq!(settlements[0].payee, NodeId(1));
        assert_eq!(net.debt(NodeId(2), NodeId(3)), AccountingUnits(5));
    }

    #[test]
    fn settle_node_closes_both_directions() {
        let mut net = SwapNetwork::new(4, config(1_000, 10_000, 0));
        // Node 1 owes node 0; node 2 owes node 1; node 3 untouched.
        net.record_service(NodeId(1), NodeId(0), AccountingUnits(40))
            .unwrap();
        net.record_service(NodeId(2), NodeId(1), AccountingUnits(15))
            .unwrap();
        let settlements = net.settle_node(NodeId(1)).unwrap();
        assert_eq!(settlements.len(), 2);
        // Deterministic ascending-pair order: (1 pays 0), then (2 pays 1).
        assert_eq!(settlements[0].payer, NodeId(1));
        assert_eq!(settlements[0].payee, NodeId(0));
        assert_eq!(settlements[1].payer, NodeId(2));
        assert_eq!(settlements[1].payee, NodeId(1));
        assert_eq!(net.debt(NodeId(1), NodeId(0)), AccountingUnits::ZERO);
        assert_eq!(net.debt(NodeId(2), NodeId(1)), AccountingUnits::ZERO);
        // Idempotent once clean.
        assert!(net.settle_node(NodeId(1)).unwrap().is_empty());
        // Unknown peers rejected.
        assert!(net.settle_node(NodeId(9)).is_err());
    }

    #[test]
    fn pay_direct_moves_funds_without_channel() {
        let mut net = SwapNetwork::new(2, ChannelConfig::default());
        let before = net.wallet(NodeId(1));
        let s = net
            .pay_direct(NodeId(0), NodeId(1), AccountingUnits(12))
            .unwrap()
            .unwrap();
        assert_eq!(s.amount, Bzz(12));
        assert_eq!(net.wallet(NodeId(1)), before + Bzz(12));
        assert_eq!(net.debt(NodeId(0), NodeId(1)), AccountingUnits::ZERO);
        // Zero or negative amounts are no-ops.
        assert!(net
            .pay_direct(NodeId(0), NodeId(1), AccountingUnits::ZERO)
            .unwrap()
            .is_none());
    }

    #[test]
    fn net_positions_sum_to_zero() {
        let mut net = SwapNetwork::new(5, ChannelConfig::unlimited());
        net.record_service(NodeId(0), NodeId(1), AccountingUnits(10))
            .unwrap();
        net.record_service(NodeId(1), NodeId(2), AccountingUnits(3))
            .unwrap();
        net.record_service(NodeId(4), NodeId(0), AccountingUnits(8))
            .unwrap();
        let net_positions = net.net_positions();
        let total: AccountingUnits = net_positions.iter().copied().sum();
        assert_eq!(total, AccountingUnits::ZERO);
        assert_eq!(net_positions[1].raw(), 10 - 3);
    }
}
