//! Workload construction and generation.

use std::error::Error;
use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

use fairswap_kademlia::{AddressSpace, NodeId, OverlayAddress};

use crate::files::FileSizeDist;
use crate::originators::OriginatorPool;
use crate::popularity::{ChunkDist, ChunkSampler};
use crate::rng::{seeded, WorkloadRng};

/// Errors from workload configuration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// The network has no nodes.
    EmptyNetwork,
    /// Originator fraction outside `(0, 1]`.
    InvalidFraction {
        /// The rejected fraction.
        fraction: f64,
    },
    /// File-size distribution with an empty or zero range.
    InvalidFileSize {
        /// Configured minimum.
        min: usize,
        /// Configured maximum.
        max: usize,
    },
    /// Zipf parameters out of range.
    InvalidZipf {
        /// Catalog size.
        catalog: usize,
        /// Exponent.
        exponent: f64,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyNetwork => write!(f, "workload needs at least one node"),
            Self::InvalidFraction { fraction } => {
                write!(f, "originator fraction must be in (0, 1], got {fraction}")
            }
            Self::InvalidFileSize { min, max } => {
                write!(f, "invalid file size range {min}..={max}")
            }
            Self::InvalidZipf { catalog, exponent } => {
                write!(
                    f,
                    "invalid zipf parameters: catalog {catalog}, exponent {exponent}"
                )
            }
        }
    }
}

impl Error for WorkloadError {}

/// One file download: the originator and the chunk addresses it requests.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileDownload {
    /// The requesting node.
    pub originator: NodeId,
    /// Addresses of the file's chunks.
    pub chunks: Vec<OverlayAddress>,
}

/// Builder for a [`Workload`].
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    space: AddressSpace,
    nodes: usize,
    originator_fraction: f64,
    file_size: FileSizeDist,
    chunk_dist: ChunkDist,
    seed: u64,
}

impl WorkloadBuilder {
    /// Starts a builder for a network of `nodes` nodes over `space`, with
    /// the paper defaults: 100% originators, uniform 100–1000-chunk files,
    /// uniform chunk addresses, seed `0xFA12`.
    pub fn new(space: AddressSpace, nodes: usize) -> Self {
        Self {
            space,
            nodes,
            originator_fraction: 1.0,
            file_size: FileSizeDist::paper_default(),
            chunk_dist: ChunkDist::Uniform,
            seed: 0xFA12,
        }
    }

    /// Fraction of nodes eligible to originate downloads (paper: 0.2 or 1.0).
    #[must_use]
    pub fn originator_fraction(mut self, fraction: f64) -> Self {
        self.originator_fraction = fraction;
        self
    }

    /// File-size distribution.
    #[must_use]
    pub fn file_size(mut self, dist: FileSizeDist) -> Self {
        self.file_size = dist;
        self
    }

    /// Chunk-address distribution.
    #[must_use]
    pub fn chunk_dist(mut self, dist: ChunkDist) -> Self {
        self.chunk_dist = dist;
        self
    }

    /// RNG seed for pool selection and all draws.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the workload generator.
    ///
    /// # Errors
    ///
    /// Returns the first configuration error found (see [`WorkloadError`]).
    pub fn build(&self) -> Result<Workload, WorkloadError> {
        self.file_size.validate()?;
        let mut rng = seeded(self.seed);
        let pool = OriginatorPool::sample(self.nodes, self.originator_fraction, &mut rng)?;
        let sampler = ChunkSampler::new(&self.chunk_dist, self.space, &mut rng)?;
        Ok(Workload {
            pool,
            file_size: self.file_size,
            sampler,
            rng,
        })
    }
}

/// A seeded stream of [`FileDownload`]s.
///
/// Also usable as an `Iterator` (never exhausts).
#[derive(Debug, Clone)]
pub struct Workload {
    pool: OriginatorPool,
    file_size: FileSizeDist,
    sampler: ChunkSampler,
    rng: WorkloadRng,
}

impl Workload {
    /// The originator pool in use.
    pub fn pool(&self) -> &OriginatorPool {
        &self.pool
    }

    /// Resamples the originator pool over the live node set with a full
    /// rescan (see [`OriginatorPool::sync_live`]).
    pub fn sync_live(&mut self, is_live: impl Fn(NodeId) -> bool) {
        self.pool.sync_live(is_live);
    }

    /// Applies one step's liveness flips to the originator pool without
    /// rescanning the population (see
    /// [`OriginatorPool::apply_membership`]). Called by churn-aware
    /// harnesses with exactly the nodes that joined or left this step.
    pub fn apply_membership(
        &mut self,
        changes: &[(NodeId, bool)],
        is_live: impl Fn(NodeId) -> bool,
    ) {
        self.pool.apply_membership(changes, is_live);
    }

    /// Draws the next file download from the workload's own RNG stream.
    pub fn next_download(&mut self) -> FileDownload {
        let originator = self.pool.pick(&mut self.rng);
        let size = self.file_size.sample(&mut self.rng);
        let chunks = (0..size)
            .map(|_| self.sampler.sample(&mut self.rng))
            .collect();
        FileDownload { originator, chunks }
    }

    /// Draws a download using an *external* RNG, leaving the workload's own
    /// stream untouched. This is the entry point for cadCAD-style engines
    /// where the policy's RNG is owned by the engine, not the workload.
    pub fn sample_with<R: Rng>(&self, rng: &mut R) -> FileDownload {
        let originator = self.pool.pick(rng);
        let size = self.file_size.sample(rng);
        let chunks = (0..size).map(|_| self.sampler.sample(rng)).collect();
        FileDownload { originator, chunks }
    }

    /// Draws `count` downloads.
    pub fn take_downloads(&mut self, count: usize) -> Vec<FileDownload> {
        (0..count).map(|_| self.next_download()).collect()
    }
}

impl Iterator for Workload {
    type Item = FileDownload;

    fn next(&mut self) -> Option<FileDownload> {
        Some(self.next_download())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> AddressSpace {
        AddressSpace::new(16).unwrap()
    }

    #[test]
    fn generates_paper_shaped_downloads() {
        let mut w = WorkloadBuilder::new(space(), 100)
            .originator_fraction(0.2)
            .seed(1)
            .build()
            .unwrap();
        for _ in 0..50 {
            let d = w.next_download();
            assert!((100..=1000).contains(&d.chunks.len()));
            assert!(w.pool().contains(d.originator));
        }
        assert_eq!(w.pool().len(), 20);
    }

    #[test]
    fn deterministic_per_seed() {
        let gen = |seed| {
            let mut w = WorkloadBuilder::new(space(), 50)
                .seed(seed)
                .build()
                .unwrap();
            w.take_downloads(5)
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }

    #[test]
    fn iterator_interface() {
        let w = WorkloadBuilder::new(space(), 10)
            .file_size(FileSizeDist::Constant(3))
            .build()
            .unwrap();
        let downloads: Vec<FileDownload> = w.take(4).collect();
        assert_eq!(downloads.len(), 4);
        assert!(downloads.iter().all(|d| d.chunks.len() == 3));
    }

    #[test]
    fn propagates_configuration_errors() {
        assert!(matches!(
            WorkloadBuilder::new(space(), 0).build(),
            Err(WorkloadError::EmptyNetwork)
        ));
        assert!(matches!(
            WorkloadBuilder::new(space(), 10)
                .originator_fraction(0.0)
                .build(),
            Err(WorkloadError::InvalidFraction { .. })
        ));
        assert!(matches!(
            WorkloadBuilder::new(space(), 10)
                .file_size(FileSizeDist::Constant(0))
                .build(),
            Err(WorkloadError::InvalidFileSize { .. })
        ));
        assert!(matches!(
            WorkloadBuilder::new(space(), 10)
                .chunk_dist(ChunkDist::Zipf {
                    catalog: 0,
                    exponent: 1.0
                })
                .build(),
            Err(WorkloadError::InvalidZipf { .. })
        ));
    }

    #[test]
    fn zipf_workload_repeats_popular_chunks() {
        let mut w = WorkloadBuilder::new(space(), 10)
            .chunk_dist(ChunkDist::Zipf {
                catalog: 20,
                exponent: 1.2,
            })
            .file_size(FileSizeDist::Constant(100))
            .seed(3)
            .build()
            .unwrap();
        let d = w.next_download();
        let distinct: std::collections::HashSet<u64> = d.chunks.iter().map(|c| c.raw()).collect();
        assert!(distinct.len() <= 20);
    }

    #[test]
    fn error_display() {
        let e = WorkloadError::InvalidFraction { fraction: 2.0 };
        assert!(e.to_string().contains("2"));
    }
}
