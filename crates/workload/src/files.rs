//! File-size distributions.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::builder::WorkloadError;

/// Distribution of the number of chunks per downloaded file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FileSizeDist {
    /// Uniform over `min..=max` chunks.
    Uniform {
        /// Smallest file in chunks.
        min: usize,
        /// Largest file in chunks.
        max: usize,
    },
    /// Every file has exactly this many chunks.
    Constant(usize),
}

impl FileSizeDist {
    /// The paper's default: uniform between 100 and 1000 chunks.
    pub const fn paper_default() -> Self {
        FileSizeDist::Uniform {
            min: 100,
            max: 1000,
        }
    }

    /// Validates the distribution parameters.
    ///
    /// # Errors
    ///
    /// Rejects empty ranges and zero-chunk files.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        match *self {
            FileSizeDist::Uniform { min, max } => {
                if min == 0 || min > max {
                    Err(WorkloadError::InvalidFileSize { min, max })
                } else {
                    Ok(())
                }
            }
            FileSizeDist::Constant(n) => {
                if n == 0 {
                    Err(WorkloadError::InvalidFileSize { min: n, max: n })
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Samples a file size.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        match *self {
            FileSizeDist::Uniform { min, max } => rng.gen_range(min..=max),
            FileSizeDist::Constant(n) => n,
        }
    }

    /// Expected file size in chunks.
    pub fn mean(&self) -> f64 {
        match *self {
            FileSizeDist::Uniform { min, max } => (min + max) as f64 / 2.0,
            FileSizeDist::Constant(n) => n as f64,
        }
    }
}

impl Default for FileSizeDist {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn uniform_stays_in_range() {
        let d = FileSizeDist::paper_default();
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        for _ in 0..1000 {
            let n = d.sample(&mut rng);
            assert!((100..=1000).contains(&n));
        }
        assert_eq!(d.mean(), 550.0);
    }

    #[test]
    fn constant_is_constant() {
        let d = FileSizeDist::Constant(42);
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        assert_eq!(d.sample(&mut rng), 42);
        assert_eq!(d.mean(), 42.0);
    }

    #[test]
    fn validation() {
        assert!(FileSizeDist::Uniform { min: 0, max: 5 }.validate().is_err());
        assert!(FileSizeDist::Uniform { min: 6, max: 5 }.validate().is_err());
        assert!(FileSizeDist::Constant(0).validate().is_err());
        assert!(FileSizeDist::paper_default().validate().is_ok());
        assert_eq!(FileSizeDist::default(), FileSizeDist::paper_default());
    }

    #[test]
    fn uniform_covers_endpoints() {
        let d = FileSizeDist::Uniform { min: 1, max: 3 };
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[d.sample(&mut rng)] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
