//! Seeded RNG used by workload generation.

use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// The workload RNG — ChaCha12 for cross-platform reproducibility of the
/// paper's fixed-seed methodology.
pub(crate) type WorkloadRng = ChaCha12Rng;

/// Creates a workload RNG from a 64-bit seed.
pub(crate) fn seeded(seed: u64) -> WorkloadRng {
    ChaCha12Rng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn reproducible() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
