//! Workload trace export/import.
//!
//! The paper's tool reuses "the same overlay for multiple simulations",
//! collecting "data from runs on multiple machines into a single
//! simulation". Serializable traces provide the equivalent workflow here: a
//! workload can be materialized once, shipped around, and replayed bit-for-
//! bit anywhere.

use serde::{Deserialize, Serialize};

use crate::builder::{FileDownload, Workload};

/// A materialized, replayable sequence of downloads.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadTrace {
    downloads: Vec<FileDownload>,
}

impl WorkloadTrace {
    /// Captures `count` downloads from a live workload.
    pub fn capture(workload: &mut Workload, count: usize) -> Self {
        Self {
            downloads: workload.take_downloads(count),
        }
    }

    /// Creates a trace from explicit downloads.
    pub fn from_downloads(downloads: Vec<FileDownload>) -> Self {
        Self { downloads }
    }

    /// The recorded downloads.
    pub fn downloads(&self) -> &[FileDownload] {
        &self.downloads
    }

    /// Number of recorded downloads.
    pub fn len(&self) -> usize {
        self.downloads.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.downloads.is_empty()
    }

    /// Total chunk requests across all downloads.
    pub fn total_chunks(&self) -> usize {
        self.downloads.iter().map(|d| d.chunks.len()).sum()
    }

    /// Iterates over the downloads.
    pub fn iter(&self) -> impl Iterator<Item = &FileDownload> {
        self.downloads.iter()
    }
}

impl IntoIterator for WorkloadTrace {
    type Item = FileDownload;
    type IntoIter = std::vec::IntoIter<FileDownload>;

    fn into_iter(self) -> Self::IntoIter {
        self.downloads.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::WorkloadBuilder;
    use crate::files::FileSizeDist;
    use fairswap_kademlia::AddressSpace;

    fn workload(seed: u64) -> Workload {
        WorkloadBuilder::new(AddressSpace::new(16).unwrap(), 20)
            .file_size(FileSizeDist::Constant(5))
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn capture_and_replay() {
        let mut w = workload(1);
        let trace = WorkloadTrace::capture(&mut w, 10);
        assert_eq!(trace.len(), 10);
        assert_eq!(trace.total_chunks(), 50);
        assert!(!trace.is_empty());
        // Capturing from an identically-seeded workload gives the same trace.
        let mut w2 = workload(1);
        let trace2 = WorkloadTrace::capture(&mut w2, 10);
        assert_eq!(trace, trace2);
    }

    #[test]
    fn iteration() {
        let mut w = workload(2);
        let trace = WorkloadTrace::capture(&mut w, 3);
        assert_eq!(trace.iter().count(), 3);
        let collected: Vec<FileDownload> = trace.clone().into_iter().collect();
        assert_eq!(collected.len(), 3);
        let rebuilt = WorkloadTrace::from_downloads(collected);
        assert_eq!(rebuilt, trace);
    }
}
