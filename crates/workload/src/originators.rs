//! Originator pools: which nodes issue download requests.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use fairswap_kademlia::NodeId;

use crate::builder::WorkloadError;

/// The subset of nodes that act as download originators.
///
/// The paper picks "originators uniformly from either 20% or 100% of the
/// nodes, to evaluate the effect of skewed workloads". The pool membership
/// is fixed up front (deterministically from the workload seed); each
/// download then draws uniformly from the pool.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OriginatorPool {
    members: Vec<NodeId>,
    /// `members` restricted to the currently live overlay (equal to
    /// `members` on static topologies). [`OriginatorPool::pick`] draws from
    /// this set; [`OriginatorPool::sync_live`] maintains it under churn.
    active: Vec<NodeId>,
    total_nodes: usize,
}

impl OriginatorPool {
    /// Selects `fraction` of `nodes` nodes (at least one) uniformly at
    /// random as the originator pool.
    ///
    /// # Errors
    ///
    /// Rejects fractions outside `(0, 1]` and empty networks.
    pub fn sample<R: Rng>(nodes: usize, fraction: f64, rng: &mut R) -> Result<Self, WorkloadError> {
        if nodes == 0 {
            return Err(WorkloadError::EmptyNetwork);
        }
        if !(fraction > 0.0 && fraction <= 1.0) {
            return Err(WorkloadError::InvalidFraction { fraction });
        }
        let count = ((nodes as f64 * fraction).round() as usize).clamp(1, nodes);
        let mut ids: Vec<usize> = (0..nodes).collect();
        ids.partial_shuffle(rng, count);
        let mut members: Vec<NodeId> = ids.into_iter().take(count).map(NodeId).collect();
        members.sort_unstable();
        Ok(Self {
            active: members.clone(),
            members,
            total_nodes: nodes,
        })
    }

    /// A pool containing every node (the 100%-originators setting).
    pub fn all(nodes: usize) -> Result<Self, WorkloadError> {
        if nodes == 0 {
            return Err(WorkloadError::EmptyNetwork);
        }
        let members: Vec<NodeId> = (0..nodes).map(NodeId).collect();
        Ok(Self {
            active: members.clone(),
            members,
            total_nodes: nodes,
        })
    }

    /// Pool members, ascending.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Number of eligible originators.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the pool is empty (never true for constructed pools).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The fraction of the network eligible to originate.
    pub fn fraction(&self) -> f64 {
        self.members.len() as f64 / self.total_nodes as f64
    }

    /// Whether `node` may originate downloads.
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.binary_search(&node).is_ok()
    }

    /// The members currently eligible to originate: the pool intersected
    /// with the live overlay (falls back to all live nodes when the whole
    /// pool is offline).
    pub fn active_members(&self) -> &[NodeId] {
        &self.active
    }

    /// Resamples the pool over the live node set: downloads only ever
    /// originate from nodes that are actually online. Membership itself is
    /// stable — a pool node that left and rejoined becomes eligible again.
    ///
    /// If every pool member is offline, the live population substitutes as
    /// the active set (deterministically), so the workload never stalls;
    /// the churn plan's live floor guarantees `is_live` holds somewhere.
    pub fn sync_live(&mut self, is_live: impl Fn(NodeId) -> bool) {
        self.active.clear();
        self.active
            .extend(self.members.iter().copied().filter(|&n| is_live(n)));
        if self.active.is_empty() {
            self.active
                .extend((0..self.total_nodes).map(NodeId).filter(|&n| is_live(n)));
        }
    }

    /// Draws one originator uniformly from the active (live) pool.
    ///
    /// # Panics
    ///
    /// Panics if every node in the network is offline, which the churn
    /// plan's live floor rules out.
    pub fn pick<R: Rng>(&self, rng: &mut R) -> NodeId {
        self.active[rng.gen_range(0..self.active.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn sample_respects_fraction() {
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let pool = OriginatorPool::sample(1000, 0.2, &mut rng).unwrap();
        assert_eq!(pool.len(), 200);
        assert!((pool.fraction() - 0.2).abs() < 1e-12);
        // Members are distinct and in range.
        let mut members = pool.members().to_vec();
        members.dedup();
        assert_eq!(members.len(), 200);
        assert!(members.iter().all(|n| n.index() < 1000));
    }

    #[test]
    fn all_includes_everyone() {
        let pool = OriginatorPool::all(10).unwrap();
        assert_eq!(pool.len(), 10);
        assert_eq!(pool.fraction(), 1.0);
        assert!(pool.contains(NodeId(9)));
        assert!(!pool.contains(NodeId(10)));
        assert!(!pool.is_empty());
    }

    #[test]
    fn pick_draws_only_members() {
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let pool = OriginatorPool::sample(100, 0.1, &mut rng).unwrap();
        for _ in 0..500 {
            assert!(pool.contains(pool.pick(&mut rng)));
        }
    }

    #[test]
    fn tiny_fraction_keeps_at_least_one() {
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let pool = OriginatorPool::sample(10, 0.001, &mut rng).unwrap();
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        assert!(OriginatorPool::sample(0, 0.5, &mut rng).is_err());
        assert!(OriginatorPool::sample(10, 0.0, &mut rng).is_err());
        assert!(OriginatorPool::sample(10, 1.5, &mut rng).is_err());
        assert!(OriginatorPool::sample(10, f64::NAN, &mut rng).is_err());
        assert!(OriginatorPool::all(0).is_err());
    }

    #[test]
    fn sync_live_restricts_and_restores() {
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let mut pool = OriginatorPool::sample(50, 0.4, &mut rng).unwrap();
        let members = pool.members().to_vec();
        // Half the pool goes offline.
        let down: Vec<NodeId> = members.iter().copied().take(10).collect();
        pool.sync_live(|n| !down.contains(&n));
        assert_eq!(pool.active_members().len(), members.len() - 10);
        for _ in 0..200 {
            let picked = pool.pick(&mut rng);
            assert!(!down.contains(&picked));
            assert!(pool.contains(picked));
        }
        // Everyone returns: active equals membership again.
        pool.sync_live(|_| true);
        assert_eq!(pool.active_members(), pool.members());
    }

    #[test]
    fn sync_live_falls_back_to_live_population() {
        let mut rng = ChaCha12Rng::seed_from_u64(8);
        let mut pool = OriginatorPool::sample(30, 0.1, &mut rng).unwrap();
        let members = pool.members().to_vec();
        // The entire pool is offline; only non-members are live.
        pool.sync_live(|n| !members.contains(&n));
        assert!(!pool.active_members().is_empty());
        for _ in 0..100 {
            let picked = pool.pick(&mut rng);
            assert!(!members.contains(&picked));
        }
    }

    #[test]
    fn deterministic_given_same_rng_seed() {
        let build = |seed| {
            let mut rng = ChaCha12Rng::seed_from_u64(seed);
            OriginatorPool::sample(500, 0.2, &mut rng).unwrap()
        };
        assert_eq!(build(9), build(9));
        assert_ne!(build(9), build(10));
    }
}
