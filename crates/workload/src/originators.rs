//! Originator pools: which nodes issue download requests.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use fairswap_kademlia::NodeId;

use crate::builder::WorkloadError;

/// The subset of nodes that act as download originators.
///
/// The paper picks "originators uniformly from either 20% or 100% of the
/// nodes, to evaluate the effect of skewed workloads". The pool membership
/// is fixed up front (deterministically from the workload seed); each
/// download then draws uniformly from the pool.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OriginatorPool {
    members: Vec<NodeId>,
    /// The nodes [`OriginatorPool::pick`] draws from, kept sorted: the
    /// live pool members, or — when every member is offline — the whole
    /// live population (`fallback`). Maintained incrementally by
    /// [`OriginatorPool::apply_membership`]; [`OriginatorPool::sync_live`]
    /// rebuilds it from scratch.
    active: Vec<NodeId>,
    /// Whether `active` currently holds the whole-live-population
    /// substitute rather than the live members.
    fallback: bool,
    /// Live pool members while in fallback mode (0 by definition on
    /// entry); a positive count ends the fallback at the next batch end.
    fallback_live_members: usize,
    total_nodes: usize,
}

impl OriginatorPool {
    /// Selects `fraction` of `nodes` nodes (at least one) uniformly at
    /// random as the originator pool.
    ///
    /// # Errors
    ///
    /// Rejects fractions outside `(0, 1]` and empty networks.
    pub fn sample<R: Rng>(nodes: usize, fraction: f64, rng: &mut R) -> Result<Self, WorkloadError> {
        if nodes == 0 {
            return Err(WorkloadError::EmptyNetwork);
        }
        if !(fraction > 0.0 && fraction <= 1.0) {
            return Err(WorkloadError::InvalidFraction { fraction });
        }
        let count = ((nodes as f64 * fraction).round() as usize).clamp(1, nodes);
        let mut ids: Vec<usize> = (0..nodes).collect();
        ids.partial_shuffle(rng, count);
        let mut members: Vec<NodeId> = ids.into_iter().take(count).map(NodeId).collect();
        members.sort_unstable();
        Ok(Self {
            active: members.clone(),
            members,
            fallback: false,
            fallback_live_members: 0,
            total_nodes: nodes,
        })
    }

    /// A pool containing every node (the 100%-originators setting).
    pub fn all(nodes: usize) -> Result<Self, WorkloadError> {
        if nodes == 0 {
            return Err(WorkloadError::EmptyNetwork);
        }
        let members: Vec<NodeId> = (0..nodes).map(NodeId).collect();
        Ok(Self {
            active: members.clone(),
            members,
            fallback: false,
            fallback_live_members: 0,
            total_nodes: nodes,
        })
    }

    /// Pool members, ascending.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Number of eligible originators.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the pool is empty (never true for constructed pools).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The fraction of the network eligible to originate.
    pub fn fraction(&self) -> f64 {
        self.members.len() as f64 / self.total_nodes as f64
    }

    /// Whether `node` may originate downloads.
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.binary_search(&node).is_ok()
    }

    /// The members currently eligible to originate: the pool intersected
    /// with the live overlay (falls back to all live nodes when the whole
    /// pool is offline).
    pub fn active_members(&self) -> &[NodeId] {
        &self.active
    }

    /// Resamples the pool over the live node set: downloads only ever
    /// originate from nodes that are actually online. Membership itself is
    /// stable — a pool node that left and rejoined becomes eligible again.
    ///
    /// If every pool member is offline, the live population substitutes as
    /// the active set (deterministically), so the workload never stalls;
    /// the churn plan's live floor guarantees `is_live` holds somewhere.
    ///
    /// This is the full `O(members)` (or `O(nodes)`) rebuild; churn-aware
    /// harnesses that know exactly which nodes flipped should use
    /// [`OriginatorPool::apply_membership`] instead.
    pub fn sync_live(&mut self, is_live: impl Fn(NodeId) -> bool) {
        self.active.clear();
        self.active
            .extend(self.members.iter().copied().filter(|&n| is_live(n)));
        self.fallback = self.active.is_empty();
        self.fallback_live_members = 0;
        if self.fallback {
            self.active
                .extend((0..self.total_nodes).map(NodeId).filter(|&n| is_live(n)));
        }
    }

    /// Applies one step's liveness flips — `(node, now_live)` for exactly
    /// the nodes whose membership actually changed — keeping `active`
    /// byte-identical to what a full [`OriginatorPool::sync_live`] rescan
    /// would produce, at `O(changes × log |active|)` instead of
    /// `O(members)` per churn batch.
    ///
    /// `is_live` is only consulted on the rare mode switches (the whole
    /// pool going offline, or the first member coming back), where the
    /// substitute set genuinely needs a population scan.
    pub fn apply_membership(
        &mut self,
        changes: &[(NodeId, bool)],
        is_live: impl Fn(NodeId) -> bool,
    ) {
        if changes.is_empty() {
            return;
        }
        if self.fallback {
            // `active` mirrors the whole live population: every flip lands.
            for &(node, alive) in changes {
                if alive {
                    sorted_insert(&mut self.active, node);
                } else {
                    sorted_remove(&mut self.active, node);
                }
                if self.contains(node) {
                    if alive {
                        self.fallback_live_members += 1;
                    } else {
                        debug_assert!(self.fallback_live_members > 0, "member left while offline");
                        self.fallback_live_members = self.fallback_live_members.saturating_sub(1);
                    }
                }
            }
            if self.fallback_live_members > 0 {
                // A member returned: drop the substitute set.
                self.fallback = false;
                self.fallback_live_members = 0;
                self.active.clear();
                self.active
                    .extend(self.members.iter().copied().filter(|&n| is_live(n)));
            }
        } else {
            // `active` mirrors members ∩ live: only member flips land.
            for &(node, alive) in changes {
                if self.contains(node) {
                    if alive {
                        sorted_insert(&mut self.active, node);
                    } else {
                        sorted_remove(&mut self.active, node);
                    }
                }
            }
            if self.active.is_empty() {
                // The whole pool went offline: substitute the live
                // population so the workload never stalls.
                self.fallback = true;
                self.active
                    .extend((0..self.total_nodes).map(NodeId).filter(|&n| is_live(n)));
            }
        }
    }

    /// Draws one originator uniformly from the active (live) pool.
    ///
    /// # Panics
    ///
    /// Panics if every node in the network is offline, which the churn
    /// plan's live floor rules out.
    pub fn pick<R: Rng>(&self, rng: &mut R) -> NodeId {
        self.active[rng.gen_range(0..self.active.len())]
    }
}

fn sorted_insert(list: &mut Vec<NodeId>, node: NodeId) {
    if let Err(pos) = list.binary_search(&node) {
        list.insert(pos, node);
    }
}

fn sorted_remove(list: &mut Vec<NodeId>, node: NodeId) {
    if let Ok(pos) = list.binary_search(&node) {
        list.remove(pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn sample_respects_fraction() {
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let pool = OriginatorPool::sample(1000, 0.2, &mut rng).unwrap();
        assert_eq!(pool.len(), 200);
        assert!((pool.fraction() - 0.2).abs() < 1e-12);
        // Members are distinct and in range.
        let mut members = pool.members().to_vec();
        members.dedup();
        assert_eq!(members.len(), 200);
        assert!(members.iter().all(|n| n.index() < 1000));
    }

    #[test]
    fn all_includes_everyone() {
        let pool = OriginatorPool::all(10).unwrap();
        assert_eq!(pool.len(), 10);
        assert_eq!(pool.fraction(), 1.0);
        assert!(pool.contains(NodeId(9)));
        assert!(!pool.contains(NodeId(10)));
        assert!(!pool.is_empty());
    }

    #[test]
    fn pick_draws_only_members() {
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let pool = OriginatorPool::sample(100, 0.1, &mut rng).unwrap();
        for _ in 0..500 {
            assert!(pool.contains(pool.pick(&mut rng)));
        }
    }

    #[test]
    fn tiny_fraction_keeps_at_least_one() {
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let pool = OriginatorPool::sample(10, 0.001, &mut rng).unwrap();
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        assert!(OriginatorPool::sample(0, 0.5, &mut rng).is_err());
        assert!(OriginatorPool::sample(10, 0.0, &mut rng).is_err());
        assert!(OriginatorPool::sample(10, 1.5, &mut rng).is_err());
        assert!(OriginatorPool::sample(10, f64::NAN, &mut rng).is_err());
        assert!(OriginatorPool::all(0).is_err());
    }

    #[test]
    fn sync_live_restricts_and_restores() {
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let mut pool = OriginatorPool::sample(50, 0.4, &mut rng).unwrap();
        let members = pool.members().to_vec();
        // Half the pool goes offline.
        let down: Vec<NodeId> = members.iter().copied().take(10).collect();
        pool.sync_live(|n| !down.contains(&n));
        assert_eq!(pool.active_members().len(), members.len() - 10);
        for _ in 0..200 {
            let picked = pool.pick(&mut rng);
            assert!(!down.contains(&picked));
            assert!(pool.contains(picked));
        }
        // Everyone returns: active equals membership again.
        pool.sync_live(|_| true);
        assert_eq!(pool.active_members(), pool.members());
    }

    #[test]
    fn sync_live_falls_back_to_live_population() {
        let mut rng = ChaCha12Rng::seed_from_u64(8);
        let mut pool = OriginatorPool::sample(30, 0.1, &mut rng).unwrap();
        let members = pool.members().to_vec();
        // The entire pool is offline; only non-members are live.
        pool.sync_live(|n| !members.contains(&n));
        assert!(!pool.active_members().is_empty());
        for _ in 0..100 {
            let picked = pool.pick(&mut rng);
            assert!(!members.contains(&picked));
        }
    }

    #[test]
    fn apply_membership_matches_full_rescan() {
        // Random interleaved flips, including phases where the whole pool
        // goes offline (fallback) and comes back: after every batch the
        // incremental pool must equal a freshly rescanned one.
        let mut rng = ChaCha12Rng::seed_from_u64(11);
        let nodes = 40;
        let mut incremental = OriginatorPool::sample(nodes, 0.2, &mut rng).unwrap();
        let mut reference = incremental.clone();
        let mut live = vec![true; nodes];
        for batch in 0..200 {
            let mut changes = Vec::new();
            let batch_len = 1 + (batch % 4);
            for _ in 0..batch_len {
                let node = rng.gen_range(0..nodes);
                // Keep at least two nodes live, like the churn floor.
                if live[node] && live.iter().filter(|&&l| l).count() <= 2 {
                    continue;
                }
                live[node] = !live[node];
                changes.push((NodeId(node), live[node]));
            }
            incremental.apply_membership(&changes, |n| live[n.index()]);
            reference.sync_live(|n| live[n.index()]);
            assert_eq!(
                incremental.active_members(),
                reference.active_members(),
                "batch {batch}"
            );
        }
    }

    #[test]
    fn apply_membership_handles_pool_wide_outage_and_return() {
        let mut rng = ChaCha12Rng::seed_from_u64(13);
        let mut pool = OriginatorPool::sample(20, 0.2, &mut rng).unwrap();
        let members = pool.members().to_vec();
        let mut live = [true; 20];
        // Take every member down one at a time.
        for &m in &members {
            live[m.index()] = false;
            pool.apply_membership(&[(m, false)], |n| live[n.index()]);
        }
        // Fallback: every remaining live node substitutes.
        let expected: Vec<NodeId> = (0..20).map(NodeId).filter(|n| live[n.index()]).collect();
        assert_eq!(pool.active_members(), expected);
        // Non-member flips must keep the substitute set in sync.
        let outsider = (0..20).map(NodeId).find(|n| !members.contains(n)).unwrap();
        live[outsider.index()] = false;
        pool.apply_membership(&[(outsider, false)], |n| live[n.index()]);
        assert!(!pool.active_members().contains(&outsider));
        // First member back ends the fallback.
        live[members[0].index()] = true;
        pool.apply_membership(&[(members[0], true)], |n| live[n.index()]);
        assert_eq!(pool.active_members(), &[members[0]]);
    }

    #[test]
    fn deterministic_given_same_rng_seed() {
        let build = |seed| {
            let mut rng = ChaCha12Rng::seed_from_u64(seed);
            OriginatorPool::sample(500, 0.2, &mut rng).unwrap()
        };
        assert_eq!(build(9), build(9));
        assert_ne!(build(9), build(10));
    }
}
