//! Workload generation for storage-network simulations.
//!
//! The paper's workload (§IV-B): each simulation step downloads one file; a
//! file is 100–1000 chunks (uniform) at addresses drawn uniformly from the
//! full 16-bit space; the originator is drawn uniformly from either 20% or
//! 100% of the nodes ("to evaluate the effect of skewed workloads"). The §V
//! future-work extension adds content popularity, which [`ChunkDist::Zipf`]
//! models over a fixed catalog of popular chunks.
//!
//! ```
//! use fairswap_kademlia::AddressSpace;
//! use fairswap_workload::{WorkloadBuilder, FileSizeDist};
//!
//! let space = AddressSpace::new(16)?;
//! let mut workload = WorkloadBuilder::new(space, 1000)
//!     .originator_fraction(0.2)
//!     .file_size(FileSizeDist::paper_default())
//!     .seed(0xFA12)
//!     .build()
//!     .expect("valid workload");
//! let download = workload.next_download();
//! assert!((100..=1000).contains(&download.chunks.len()));
//! # Ok::<(), fairswap_kademlia::KademliaError>(())
//! ```

mod builder;
mod files;
mod originators;
mod popularity;
mod rng;
mod trace;

pub use builder::{FileDownload, Workload, WorkloadBuilder, WorkloadError};
pub use files::FileSizeDist;
pub use originators::OriginatorPool;
pub use popularity::ChunkDist;
pub use trace::WorkloadTrace;
