//! Chunk-address distributions: uniform (paper default) and Zipf
//! popularity (§V extension).

use rand::Rng;
use serde::{Deserialize, Serialize};

use fairswap_kademlia::{AddressSpace, OverlayAddress};

use crate::builder::WorkloadError;

/// How chunk addresses are drawn.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChunkDist {
    /// Uniform over the whole address space — "The addresses of chunks are
    /// chosen uniformly at random from the complete address space"
    /// (paper §IV-B).
    Uniform,
    /// Zipf-distributed popularity over a fixed catalog of `catalog`
    /// distinct chunk addresses with exponent `exponent`. Rank 1 is the most
    /// popular chunk. Models the paper's §V "content popularity" extension.
    Zipf {
        /// Number of distinct chunks in the catalog.
        catalog: usize,
        /// Zipf exponent (s > 0); typical web workloads use 0.6–1.2.
        exponent: f64,
    },
}

impl ChunkDist {
    /// A short stable identifier, used in CSV output.
    pub fn id(&self) -> &'static str {
        match self {
            ChunkDist::Uniform => "uniform",
            ChunkDist::Zipf { .. } => "zipf",
        }
    }

    /// Validates the distribution parameters.
    ///
    /// # Errors
    ///
    /// Rejects empty catalogs and non-positive/non-finite exponents.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        match *self {
            ChunkDist::Uniform => Ok(()),
            ChunkDist::Zipf { catalog, exponent } => {
                if catalog == 0 || !exponent.is_finite() || exponent <= 0.0 {
                    Err(WorkloadError::InvalidZipf { catalog, exponent })
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// A sampler for one [`ChunkDist`], with the Zipf catalog and cumulative
/// weights precomputed.
#[derive(Debug, Clone)]
pub(crate) enum ChunkSampler {
    Uniform {
        space: AddressSpace,
    },
    Zipf {
        /// Catalog addresses by rank (rank 0 = most popular).
        catalog: Vec<OverlayAddress>,
        /// Cumulative probability per rank, last entry 1.0.
        cdf: Vec<f64>,
    },
}

impl ChunkSampler {
    pub(crate) fn new<R: Rng>(
        dist: &ChunkDist,
        space: AddressSpace,
        rng: &mut R,
    ) -> Result<Self, WorkloadError> {
        dist.validate()?;
        match *dist {
            ChunkDist::Uniform => Ok(ChunkSampler::Uniform { space }),
            ChunkDist::Zipf { catalog, exponent } => {
                // Draw the catalog uniformly (duplicates are harmless — they
                // just merge popularity mass onto one address).
                let addresses: Vec<OverlayAddress> = (0..catalog)
                    .map(|_| space.address_truncated(rng.gen::<u64>()))
                    .collect();
                let mut cdf = Vec::with_capacity(catalog);
                let mut total = 0.0;
                for rank in 1..=catalog {
                    total += 1.0 / (rank as f64).powf(exponent);
                    cdf.push(total);
                }
                for p in &mut cdf {
                    *p /= total;
                }
                *cdf.last_mut().expect("catalog non-empty") = 1.0;
                Ok(ChunkSampler::Zipf {
                    catalog: addresses,
                    cdf,
                })
            }
        }
    }

    pub(crate) fn sample<R: Rng>(&self, rng: &mut R) -> OverlayAddress {
        match self {
            ChunkSampler::Uniform { space } => space.address_truncated(rng.gen::<u64>()),
            ChunkSampler::Zipf { catalog, cdf } => {
                let u: f64 = rng.gen();
                let rank = cdf.partition_point(|&p| p < u).min(catalog.len() - 1);
                catalog[rank]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;
    use std::collections::HashMap;

    fn space() -> AddressSpace {
        AddressSpace::new(16).unwrap()
    }

    #[test]
    fn uniform_covers_space_roughly_evenly() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let sampler = ChunkSampler::new(&ChunkDist::Uniform, space(), &mut rng).unwrap();
        let n = 40_000;
        let mut low_half = 0usize;
        for _ in 0..n {
            if sampler.sample(&mut rng).raw() < 0x8000 {
                low_half += 1;
            }
        }
        let frac = low_half as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "fraction {frac}");
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let dist = ChunkDist::Zipf {
            catalog: 100,
            exponent: 1.0,
        };
        let sampler = ChunkSampler::new(&dist, space(), &mut rng).unwrap();
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for _ in 0..20_000 {
            *counts.entry(sampler.sample(&mut rng).raw()).or_default() += 1;
        }
        let max = *counts.values().max().unwrap();
        // H(100) ~ 5.19; rank-1 share ~ 19%.
        let share = max as f64 / 20_000.0;
        assert!(share > 0.12 && share < 0.30, "rank-1 share {share}");
        // Far fewer distinct addresses than uniform would give.
        assert!(counts.len() <= 100);
    }

    #[test]
    fn higher_exponent_concentrates_more() {
        let head_share = |exponent: f64| {
            let mut rng = ChaCha12Rng::seed_from_u64(3);
            let dist = ChunkDist::Zipf {
                catalog: 50,
                exponent,
            };
            let sampler = ChunkSampler::new(&dist, space(), &mut rng).unwrap();
            let ChunkSampler::Zipf { catalog, .. } = &sampler else {
                unreachable!()
            };
            let head = catalog[0];
            let mut hits = 0usize;
            for _ in 0..10_000 {
                if sampler.sample(&mut rng) == head {
                    hits += 1;
                }
            }
            hits as f64 / 10_000.0
        };
        assert!(head_share(1.5) > head_share(0.7));
    }

    #[test]
    fn validation_rejects_bad_zipf() {
        assert!(ChunkDist::Zipf {
            catalog: 0,
            exponent: 1.0
        }
        .validate()
        .is_err());
        assert!(ChunkDist::Zipf {
            catalog: 10,
            exponent: 0.0
        }
        .validate()
        .is_err());
        assert!(ChunkDist::Zipf {
            catalog: 10,
            exponent: f64::NAN
        }
        .validate()
        .is_err());
        assert!(ChunkDist::Uniform.validate().is_ok());
    }

    #[test]
    fn single_item_catalog_always_returns_it() {
        let mut rng = ChaCha12Rng::seed_from_u64(4);
        let dist = ChunkDist::Zipf {
            catalog: 1,
            exponent: 1.0,
        };
        let sampler = ChunkSampler::new(&dist, space(), &mut rng).unwrap();
        let first = sampler.sample(&mut rng);
        for _ in 0..10 {
            assert_eq!(sampler.sample(&mut rng), first);
        }
    }
}
