//! Property-based tests for the storage-network model.

use fairswap_kademlia::{AddressSpace, NodeId, TopologyBuilder};
use fairswap_storage::{CachePolicy, DownloadSim};
use proptest::prelude::*;

fn topology(nodes: usize, k: usize, seed: u64) -> std::rc::Rc<fairswap_kademlia::Topology> {
    std::rc::Rc::new(
        TopologyBuilder::new(AddressSpace::new(12).expect("valid width"))
            .nodes(nodes)
            .bucket_size(k)
            .seed(seed)
            .build()
            .expect("valid topology"),
    )
}

proptest! {
    /// Placement: the route terminal of a delivered chunk is always the
    /// globally XOR-closest node.
    #[test]
    fn delivered_chunks_end_at_global_closest(
        nodes in 2usize..150,
        k in 1usize..6,
        seed in any::<u64>(),
        raws in prop::collection::vec(any::<u64>(), 1..30),
    ) {
        let t = topology(nodes, k, seed);
        let mut sim = DownloadSim::new(t.clone(), CachePolicy::None);
        for raw in raws {
            let chunk = t.space().address_truncated(raw);
            let delivery = sim.request_chunk(NodeId(0), chunk);
            if delivery.delivered() && !delivery.hops.is_empty() {
                prop_assert_eq!(delivery.server(), Some(t.closest_node(chunk)));
            }
        }
    }

    /// Traffic conservation: total forwarded equals the sum of hops over
    /// delivered routes; first-hop serves equal delivered multi-hop routes;
    /// requests equal chunks requested.
    #[test]
    fn traffic_counters_conserve(
        nodes in 2usize..120,
        seed in any::<u64>(),
        raws in prop::collection::vec(any::<u64>(), 0..60),
        origin_pick in any::<usize>(),
    ) {
        let t = topology(nodes, 4, seed);
        let origin = NodeId(origin_pick % t.len());
        let chunks: Vec<_> = raws.iter().map(|&r| t.space().address_truncated(r)).collect();
        let mut sim = DownloadSim::new(t.clone(), CachePolicy::None);
        let mut delivered_hops = 0u64;
        let mut delivered_with_hops = 0u64;
        let report = sim.download_file_with(origin, &chunks, |d| {
            if d.delivered() {
                delivered_hops += d.hops.len() as u64;
                if !d.hops.is_empty() {
                    delivered_with_hops += 1;
                }
            }
        });
        prop_assert_eq!(report.chunks, chunks.len());
        prop_assert_eq!(sim.stats().total_forwarded(), delivered_hops);
        let first_hops: u64 = sim.stats().served_first_hop().iter().sum();
        prop_assert_eq!(first_hops, delivered_with_hops);
        let requests: u64 = sim.stats().requests_issued().iter().sum();
        prop_assert_eq!(requests, chunks.len() as u64);
        let storer_serves: u64 = sim.stats().served_as_storer().iter().sum();
        prop_assert_eq!(storer_serves, delivered_with_hops);
    }

    /// Caching never lengthens a route and never changes the outcome of a
    /// request that would have been delivered.
    #[test]
    fn caching_only_shortens_routes(
        nodes in 10usize..120,
        seed in any::<u64>(),
        raw in any::<u64>(),
        repeats in 1usize..5,
    ) {
        let t = topology(nodes, 4, seed);
        let chunk = t.space().address_truncated(raw);
        let origin = NodeId(0);

        let mut plain = DownloadSim::new(t.clone(), CachePolicy::None);
        let mut cached = DownloadSim::new(t.clone(), CachePolicy::Lru { capacity: 128 });
        for _ in 0..repeats {
            let p = plain.request_chunk(origin, chunk);
            let c = cached.request_chunk(origin, chunk);
            prop_assert_eq!(p.delivered(), c.delivered());
            prop_assert!(c.hops.len() <= p.hops.len());
            // A cached route is a prefix of the uncached one.
            prop_assert_eq!(&p.hops[..c.hops.len()], &c.hops[..]);
        }
    }

    /// Merging split stats equals running everything in one simulator (the
    /// paper's multi-machine collection workflow).
    #[test]
    fn split_and_merge_equals_single_run(
        nodes in 4usize..80,
        seed in any::<u64>(),
        raws in prop::collection::vec(any::<u64>(), 2..40),
    ) {
        let t = topology(nodes, 4, seed);
        let chunks: Vec<_> = raws.iter().map(|&r| t.space().address_truncated(r)).collect();
        let mid = chunks.len() / 2;

        let mut whole = DownloadSim::new(t.clone(), CachePolicy::None);
        whole.download_file(NodeId(1), &chunks);

        let mut first = DownloadSim::new(t.clone(), CachePolicy::None);
        first.download_file(NodeId(1), &chunks[..mid]);
        let mut second = DownloadSim::new(t.clone(), CachePolicy::None);
        second.download_file(NodeId(1), &chunks[mid..]);

        let mut merged = first.stats().clone();
        merged.merge(second.stats());
        prop_assert_eq!(merged.forwarded(), whole.stats().forwarded());
        prop_assert_eq!(merged.served_first_hop(), whole.stats().served_first_hop());
        prop_assert_eq!(merged.stuck_requests(), whole.stats().stuck_requests());
    }
}
