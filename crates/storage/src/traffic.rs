//! Per-node traffic accounting.

use serde::{Deserialize, Serialize};

use fairswap_kademlia::NodeId;

/// Per-node bandwidth counters accumulated over a simulation.
///
/// These are the raw quantities behind the paper's evaluation: Table I and
/// Fig. 4 use `forwarded`, Fig. 6 relates `forwarded` to
/// `served_first_hop` (the "zero-proximity" service that actually gets
/// paid).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficStats {
    /// Chunks transmitted by each node (any position on a route).
    forwarded: Vec<u64>,
    /// Chunks served as the originator's first hop.
    served_first_hop: Vec<u64>,
    /// Chunks served from the node's own storage (route terminal).
    served_as_storer: Vec<u64>,
    /// Chunks served from cache (terminated a route early).
    served_from_cache: Vec<u64>,
    /// Download requests issued by each node as originator.
    requests_issued: Vec<u64>,
    /// Requests that could not be delivered (greedy routing got stuck).
    stuck_requests: u64,
    /// Requests dropped because the chosen next hop had exhausted its
    /// per-step bandwidth budget (a subset of `stuck_requests`; always 0
    /// without capacity budgets).
    capacity_blocked: u64,
    /// Hops that bypassed a saturated greedy next hop through a
    /// farther-but-unsaturated table entry (always 0 under the greedy
    /// routing policy, which drops instead of detouring).
    detoured: u64,
    /// Re-attempts of previously failed user requests (one per retry
    /// route; always 0 when `max_retries = 0`).
    retried: u64,
    /// Failed requests that a later retry delivered.
    recovered: u64,
    /// Failed requests abandoned after exhausting their retry budget.
    abandoned: u64,
    /// Requests that targeted a chunk in a lost (unrepaired) region —
    /// counted within `stuck_requests`, split out for durability
    /// accounting.
    unreachable_requests: u64,
    /// Repair re-uploads attempted (one per repair route, retries
    /// included).
    repair_transfers: u64,
    /// Repair re-uploads that reached the chunk's new storer.
    repair_delivered: u64,
    /// Total steps lost regions spent unreachable before their repair
    /// completed (sums time-to-repair over completed repairs).
    repair_wait_total: u64,
    /// Longest observed time-to-repair, in steps (still-lost regions are
    /// folded in at run end by the engine).
    repair_wait_max: u64,
}

impl TrafficStats {
    /// Zeroed counters for `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        Self {
            forwarded: vec![0; nodes],
            served_first_hop: vec![0; nodes],
            served_as_storer: vec![0; nodes],
            served_from_cache: vec![0; nodes],
            requests_issued: vec![0; nodes],
            stuck_requests: 0,
            capacity_blocked: 0,
            detoured: 0,
            retried: 0,
            recovered: 0,
            abandoned: 0,
            unreachable_requests: 0,
            repair_transfers: 0,
            repair_delivered: 0,
            repair_wait_total: 0,
            repair_wait_max: 0,
        }
    }

    /// Number of nodes tracked.
    pub fn node_count(&self) -> usize {
        self.forwarded.len()
    }

    pub(crate) fn add_forwarded(&mut self, node: NodeId) {
        self.forwarded[node.index()] += 1;
    }

    pub(crate) fn add_first_hop(&mut self, node: NodeId) {
        self.served_first_hop[node.index()] += 1;
    }

    pub(crate) fn add_storer(&mut self, node: NodeId) {
        self.served_as_storer[node.index()] += 1;
    }

    pub(crate) fn add_cache_serve(&mut self, node: NodeId) {
        self.served_from_cache[node.index()] += 1;
    }

    pub(crate) fn add_request(&mut self, node: NodeId) {
        self.requests_issued[node.index()] += 1;
    }

    pub(crate) fn add_stuck(&mut self) {
        self.stuck_requests += 1;
    }

    pub(crate) fn add_capacity_blocked(&mut self) {
        self.capacity_blocked += 1;
    }

    pub(crate) fn add_detoured(&mut self) {
        self.detoured += 1;
    }

    pub(crate) fn add_retried(&mut self) {
        self.retried += 1;
    }

    pub(crate) fn add_recovered(&mut self) {
        self.recovered += 1;
    }

    pub(crate) fn add_abandoned(&mut self) {
        self.abandoned += 1;
    }

    pub(crate) fn add_unreachable(&mut self) {
        self.unreachable_requests += 1;
    }

    pub(crate) fn add_repair_transfer(&mut self) {
        self.repair_transfers += 1;
    }

    pub(crate) fn add_repair_delivered(&mut self) {
        self.repair_delivered += 1;
    }

    pub(crate) fn add_repair_wait(&mut self, steps: u64) {
        self.repair_wait_total += steps;
        self.repair_wait_max = self.repair_wait_max.max(steps);
    }

    /// Raises the wait maximum without touching the total: used for
    /// regions still unreachable at run end, whose age must show in the
    /// worst case but not skew the mean over *completed* repairs.
    pub(crate) fn raise_repair_wait_max(&mut self, steps: u64) {
        self.repair_wait_max = self.repair_wait_max.max(steps);
    }

    /// Chunks transmitted by each node.
    pub fn forwarded(&self) -> &[u64] {
        &self.forwarded
    }

    /// Chunks each node served as the paid first hop.
    pub fn served_first_hop(&self) -> &[u64] {
        &self.served_first_hop
    }

    /// Chunks each node served from its own storage.
    pub fn served_as_storer(&self) -> &[u64] {
        &self.served_as_storer
    }

    /// Chunks each node served from cache.
    pub fn served_from_cache(&self) -> &[u64] {
        &self.served_from_cache
    }

    /// Requests each node issued as originator.
    pub fn requests_issued(&self) -> &[u64] {
        &self.requests_issued
    }

    /// Requests whose route got stuck before the storer.
    pub fn stuck_requests(&self) -> u64 {
        self.stuck_requests
    }

    /// Requests dropped on a bandwidth-saturated next hop (a subset of
    /// [`TrafficStats::stuck_requests`]).
    pub fn capacity_blocked(&self) -> u64 {
        self.capacity_blocked
    }

    /// Hops routed around a saturated greedy next hop by the
    /// capacity-detour policy (0 under greedy routing).
    pub fn detoured(&self) -> u64 {
        self.detoured
    }

    /// Re-attempts of previously failed user requests (0 when retries are
    /// disabled).
    pub fn retried(&self) -> u64 {
        self.retried
    }

    /// Failed requests a later retry delivered.
    pub fn recovered(&self) -> u64 {
        self.recovered
    }

    /// Failed requests abandoned after exhausting their retry budget.
    pub fn abandoned(&self) -> u64 {
        self.abandoned
    }

    /// Requests that targeted a chunk in a lost region (a subset of
    /// [`TrafficStats::stuck_requests`]).
    pub fn unreachable_requests(&self) -> u64 {
        self.unreachable_requests
    }

    /// Repair re-uploads attempted.
    pub fn repair_transfers(&self) -> u64 {
        self.repair_transfers
    }

    /// Repair re-uploads that completed.
    pub fn repair_delivered(&self) -> u64 {
        self.repair_delivered
    }

    /// Total steps spent unreachable across completed repairs.
    pub fn repair_wait_total(&self) -> u64 {
        self.repair_wait_total
    }

    /// Longest observed time-to-repair, in steps.
    pub fn repair_wait_max(&self) -> u64 {
        self.repair_wait_max
    }

    /// Mean steps from loss to completed repair (0 with no repairs).
    pub fn mean_time_to_repair(&self) -> f64 {
        if self.repair_delivered == 0 {
            0.0
        } else {
            self.repair_wait_total as f64 / self.repair_delivered as f64
        }
    }

    /// Total chunk transmissions network-wide.
    pub fn total_forwarded(&self) -> u64 {
        self.forwarded.iter().sum()
    }

    /// Mean forwarded chunks per node (the Table I metric).
    pub fn mean_forwarded(&self) -> f64 {
        if self.forwarded.is_empty() {
            0.0
        } else {
            self.total_forwarded() as f64 / self.forwarded.len() as f64
        }
    }

    /// `forwarded` as `f64`s, for fairness metrics.
    pub fn forwarded_f64(&self) -> Vec<f64> {
        self.forwarded.iter().map(|&v| v as f64).collect()
    }

    /// `served_first_hop` as `f64`s, for fairness metrics.
    pub fn served_first_hop_f64(&self) -> Vec<f64> {
        self.served_first_hop.iter().map(|&v| v as f64).collect()
    }

    /// Merges counters from another stats object (e.g. collected on another
    /// machine over the same overlay — the paper's multi-machine workflow).
    ///
    /// # Panics
    ///
    /// Panics if the node counts differ.
    pub fn merge(&mut self, other: &TrafficStats) {
        assert_eq!(
            self.node_count(),
            other.node_count(),
            "cannot merge stats for different network sizes"
        );
        for (a, b) in self.forwarded.iter_mut().zip(&other.forwarded) {
            *a += b;
        }
        for (a, b) in self
            .served_first_hop
            .iter_mut()
            .zip(&other.served_first_hop)
        {
            *a += b;
        }
        for (a, b) in self
            .served_as_storer
            .iter_mut()
            .zip(&other.served_as_storer)
        {
            *a += b;
        }
        for (a, b) in self
            .served_from_cache
            .iter_mut()
            .zip(&other.served_from_cache)
        {
            *a += b;
        }
        for (a, b) in self.requests_issued.iter_mut().zip(&other.requests_issued) {
            *a += b;
        }
        self.stuck_requests += other.stuck_requests;
        self.capacity_blocked += other.capacity_blocked;
        self.detoured += other.detoured;
        self.retried += other.retried;
        self.recovered += other.recovered;
        self.abandoned += other.abandoned;
        self.unreachable_requests += other.unreachable_requests;
        self.repair_transfers += other.repair_transfers;
        self.repair_delivered += other.repair_delivered;
        self.repair_wait_total += other.repair_wait_total;
        // Wait maxima do not sum: the merged maximum is the larger one.
        self.repair_wait_max = self.repair_wait_max.max(other.repair_wait_max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = TrafficStats::new(3);
        s.add_forwarded(NodeId(0));
        s.add_forwarded(NodeId(0));
        s.add_first_hop(NodeId(1));
        s.add_storer(NodeId(2));
        s.add_cache_serve(NodeId(1));
        s.add_request(NodeId(0));
        s.add_stuck();
        assert_eq!(s.forwarded(), &[2, 0, 0]);
        assert_eq!(s.served_first_hop(), &[0, 1, 0]);
        assert_eq!(s.served_as_storer(), &[0, 0, 1]);
        assert_eq!(s.served_from_cache(), &[0, 1, 0]);
        assert_eq!(s.requests_issued(), &[1, 0, 0]);
        assert_eq!(s.stuck_requests(), 1);
        assert_eq!(s.total_forwarded(), 2);
        assert!((s.mean_forwarded() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = TrafficStats::new(2);
        a.add_forwarded(NodeId(0));
        a.add_repair_wait(9);
        let mut b = TrafficStats::new(2);
        b.add_forwarded(NodeId(0));
        b.add_forwarded(NodeId(1));
        b.add_stuck();
        b.add_capacity_blocked();
        b.add_detoured();
        b.add_retried();
        b.add_recovered();
        b.add_abandoned();
        b.add_unreachable();
        b.add_repair_transfer();
        b.add_repair_delivered();
        b.add_repair_wait(4);
        a.merge(&b);
        assert_eq!(a.forwarded(), &[2, 1]);
        assert_eq!(a.stuck_requests(), 1);
        assert_eq!(a.capacity_blocked(), 1);
        assert_eq!(a.detoured(), 1);
        assert_eq!(a.retried(), 1);
        assert_eq!(a.recovered(), 1);
        assert_eq!(a.abandoned(), 1);
        assert_eq!(a.unreachable_requests(), 1);
        assert_eq!(a.repair_transfers(), 1);
        assert_eq!(a.repair_delivered(), 1);
        assert_eq!(a.repair_wait_total(), 13);
        // The merged maximum is the larger side's, not the sum.
        assert_eq!(a.repair_wait_max(), 9);
    }

    #[test]
    fn repair_wait_tracks_total_and_max() {
        let mut s = TrafficStats::new(1);
        assert_eq!(s.mean_time_to_repair(), 0.0);
        s.add_repair_wait(3);
        s.add_repair_wait(7);
        s.add_repair_delivered();
        s.add_repair_delivered();
        assert_eq!(s.repair_wait_total(), 10);
        assert_eq!(s.repair_wait_max(), 7);
        assert!((s.mean_time_to_repair() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different network sizes")]
    fn merge_rejects_size_mismatch() {
        let mut a = TrafficStats::new(2);
        let b = TrafficStats::new(3);
        a.merge(&b);
    }

    #[test]
    fn empty_stats_mean_is_zero() {
        let s = TrafficStats::new(0);
        assert_eq!(s.mean_forwarded(), 0.0);
    }
}
