//! Per-node traffic accounting.

use serde::{Deserialize, Serialize};

use fairswap_kademlia::NodeId;

/// Per-node bandwidth counters accumulated over a simulation.
///
/// These are the raw quantities behind the paper's evaluation: Table I and
/// Fig. 4 use `forwarded`, Fig. 6 relates `forwarded` to
/// `served_first_hop` (the "zero-proximity" service that actually gets
/// paid).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficStats {
    /// Chunks transmitted by each node (any position on a route).
    forwarded: Vec<u64>,
    /// Chunks served as the originator's first hop.
    served_first_hop: Vec<u64>,
    /// Chunks served from the node's own storage (route terminal).
    served_as_storer: Vec<u64>,
    /// Chunks served from cache (terminated a route early).
    served_from_cache: Vec<u64>,
    /// Download requests issued by each node as originator.
    requests_issued: Vec<u64>,
    /// Requests that could not be delivered (greedy routing got stuck).
    stuck_requests: u64,
    /// Requests dropped because the chosen next hop had exhausted its
    /// per-step bandwidth budget (a subset of `stuck_requests`; always 0
    /// without capacity budgets).
    capacity_blocked: u64,
    /// Hops that bypassed a saturated greedy next hop through a
    /// farther-but-unsaturated table entry (always 0 under the greedy
    /// routing policy, which drops instead of detouring).
    detoured: u64,
}

impl TrafficStats {
    /// Zeroed counters for `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        Self {
            forwarded: vec![0; nodes],
            served_first_hop: vec![0; nodes],
            served_as_storer: vec![0; nodes],
            served_from_cache: vec![0; nodes],
            requests_issued: vec![0; nodes],
            stuck_requests: 0,
            capacity_blocked: 0,
            detoured: 0,
        }
    }

    /// Number of nodes tracked.
    pub fn node_count(&self) -> usize {
        self.forwarded.len()
    }

    pub(crate) fn add_forwarded(&mut self, node: NodeId) {
        self.forwarded[node.index()] += 1;
    }

    pub(crate) fn add_first_hop(&mut self, node: NodeId) {
        self.served_first_hop[node.index()] += 1;
    }

    pub(crate) fn add_storer(&mut self, node: NodeId) {
        self.served_as_storer[node.index()] += 1;
    }

    pub(crate) fn add_cache_serve(&mut self, node: NodeId) {
        self.served_from_cache[node.index()] += 1;
    }

    pub(crate) fn add_request(&mut self, node: NodeId) {
        self.requests_issued[node.index()] += 1;
    }

    pub(crate) fn add_stuck(&mut self) {
        self.stuck_requests += 1;
    }

    pub(crate) fn add_capacity_blocked(&mut self) {
        self.capacity_blocked += 1;
    }

    pub(crate) fn add_detoured(&mut self) {
        self.detoured += 1;
    }

    /// Chunks transmitted by each node.
    pub fn forwarded(&self) -> &[u64] {
        &self.forwarded
    }

    /// Chunks each node served as the paid first hop.
    pub fn served_first_hop(&self) -> &[u64] {
        &self.served_first_hop
    }

    /// Chunks each node served from its own storage.
    pub fn served_as_storer(&self) -> &[u64] {
        &self.served_as_storer
    }

    /// Chunks each node served from cache.
    pub fn served_from_cache(&self) -> &[u64] {
        &self.served_from_cache
    }

    /// Requests each node issued as originator.
    pub fn requests_issued(&self) -> &[u64] {
        &self.requests_issued
    }

    /// Requests whose route got stuck before the storer.
    pub fn stuck_requests(&self) -> u64 {
        self.stuck_requests
    }

    /// Requests dropped on a bandwidth-saturated next hop (a subset of
    /// [`TrafficStats::stuck_requests`]).
    pub fn capacity_blocked(&self) -> u64 {
        self.capacity_blocked
    }

    /// Hops routed around a saturated greedy next hop by the
    /// capacity-detour policy (0 under greedy routing).
    pub fn detoured(&self) -> u64 {
        self.detoured
    }

    /// Total chunk transmissions network-wide.
    pub fn total_forwarded(&self) -> u64 {
        self.forwarded.iter().sum()
    }

    /// Mean forwarded chunks per node (the Table I metric).
    pub fn mean_forwarded(&self) -> f64 {
        if self.forwarded.is_empty() {
            0.0
        } else {
            self.total_forwarded() as f64 / self.forwarded.len() as f64
        }
    }

    /// `forwarded` as `f64`s, for fairness metrics.
    pub fn forwarded_f64(&self) -> Vec<f64> {
        self.forwarded.iter().map(|&v| v as f64).collect()
    }

    /// `served_first_hop` as `f64`s, for fairness metrics.
    pub fn served_first_hop_f64(&self) -> Vec<f64> {
        self.served_first_hop.iter().map(|&v| v as f64).collect()
    }

    /// Merges counters from another stats object (e.g. collected on another
    /// machine over the same overlay — the paper's multi-machine workflow).
    ///
    /// # Panics
    ///
    /// Panics if the node counts differ.
    pub fn merge(&mut self, other: &TrafficStats) {
        assert_eq!(
            self.node_count(),
            other.node_count(),
            "cannot merge stats for different network sizes"
        );
        for (a, b) in self.forwarded.iter_mut().zip(&other.forwarded) {
            *a += b;
        }
        for (a, b) in self
            .served_first_hop
            .iter_mut()
            .zip(&other.served_first_hop)
        {
            *a += b;
        }
        for (a, b) in self
            .served_as_storer
            .iter_mut()
            .zip(&other.served_as_storer)
        {
            *a += b;
        }
        for (a, b) in self
            .served_from_cache
            .iter_mut()
            .zip(&other.served_from_cache)
        {
            *a += b;
        }
        for (a, b) in self.requests_issued.iter_mut().zip(&other.requests_issued) {
            *a += b;
        }
        self.stuck_requests += other.stuck_requests;
        self.capacity_blocked += other.capacity_blocked;
        self.detoured += other.detoured;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = TrafficStats::new(3);
        s.add_forwarded(NodeId(0));
        s.add_forwarded(NodeId(0));
        s.add_first_hop(NodeId(1));
        s.add_storer(NodeId(2));
        s.add_cache_serve(NodeId(1));
        s.add_request(NodeId(0));
        s.add_stuck();
        assert_eq!(s.forwarded(), &[2, 0, 0]);
        assert_eq!(s.served_first_hop(), &[0, 1, 0]);
        assert_eq!(s.served_as_storer(), &[0, 0, 1]);
        assert_eq!(s.served_from_cache(), &[0, 1, 0]);
        assert_eq!(s.requests_issued(), &[1, 0, 0]);
        assert_eq!(s.stuck_requests(), 1);
        assert_eq!(s.total_forwarded(), 2);
        assert!((s.mean_forwarded() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = TrafficStats::new(2);
        a.add_forwarded(NodeId(0));
        let mut b = TrafficStats::new(2);
        b.add_forwarded(NodeId(0));
        b.add_forwarded(NodeId(1));
        b.add_stuck();
        b.add_capacity_blocked();
        b.add_detoured();
        a.merge(&b);
        assert_eq!(a.forwarded(), &[2, 1]);
        assert_eq!(a.stuck_requests(), 1);
        assert_eq!(a.capacity_blocked(), 1);
        assert_eq!(a.detoured(), 1);
    }

    #[test]
    #[should_panic(expected = "different network sizes")]
    fn merge_rejects_size_mismatch() {
        let mut a = TrafficStats::new(2);
        let b = TrafficStats::new(3);
        a.merge(&b);
    }

    #[test]
    fn empty_stats_mean_is_zero() {
        let s = TrafficStats::new(0);
        assert_eq!(s.mean_forwarded(), 0.0);
    }
}
