//! The upload (push-sync) path.
//!
//! Paper §III-A: "Upload is done in a similar fashion, where nodes forward
//! the chunk and eventually return a confirmation." An uploaded chunk is
//! routed exactly like a download request — greedy forwarding toward the
//! chunk address — but the payload travels *with* the request, and the node
//! closest to the address stores the chunk; a receipt returns along the
//! same path. Bandwidth accounting is symmetric to download: every hop
//! transmits the chunk once, and the first hop is the originator's paid
//! zero-proximity peer.

use std::collections::HashSet;
use std::rc::Rc;

use serde::{Deserialize, Serialize};

use fairswap_kademlia::{NodeId, OverlayAddress, RouteOutcome, Topology};

use crate::download::ChunkDelivery;
use crate::traffic::TrafficStats;

/// Outcome of uploading one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UploadReport {
    /// Chunks pushed.
    pub chunks: usize,
    /// Chunks that reached their storer.
    pub stored: usize,
    /// Chunks lost to stuck routes.
    pub stuck: usize,
    /// Total hops across all pushes.
    pub total_hops: usize,
}

/// Simulates push-sync uploads over a static topology.
///
/// Mirrors [`crate::DownloadSim`] for the upload direction, and tracks
/// which node stores which chunk so that a subsequent download simulation
/// can be seeded with realistic placement.
#[derive(Debug, Clone)]
pub struct UploadSim {
    topology: Rc<Topology>,
    stats: TrafficStats,
    /// Chunks stored per node (by raw address).
    stored: Vec<HashSet<u64>>,
}

impl UploadSim {
    /// Creates an upload simulator.
    pub fn new(topology: impl Into<Rc<Topology>>) -> Self {
        let topology = topology.into();
        let n = topology.len();
        Self {
            topology,
            stats: TrafficStats::new(n),
            stored: vec![HashSet::new(); n],
        }
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Accumulated traffic statistics (uploads count as forwarded chunks
    /// exactly like downloads — both directions move the 4KB payload).
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Chunks stored by `node`.
    pub fn stored_by(&self, node: NodeId) -> usize {
        self.stored.get(node.index()).map_or(0, HashSet::len)
    }

    /// Whether `node` stores `chunk`.
    pub fn stores(&self, node: NodeId, chunk: OverlayAddress) -> bool {
        self.stored
            .get(node.index())
            .is_some_and(|set| set.contains(&chunk.raw()))
    }

    /// Uploads all chunks of a file.
    pub fn upload_file(&mut self, originator: NodeId, chunks: &[OverlayAddress]) -> UploadReport {
        self.upload_file_with(originator, chunks, |_| {})
    }

    /// Uploads all chunks of a file, invoking `on_push` per chunk so
    /// incentive mechanisms can account the upload bandwidth (the
    /// [`ChunkDelivery`] shape is shared with downloads — "Each request for
    /// either upload and download is priced respective to the distance",
    /// paper §III-B).
    pub fn upload_file_with<F>(
        &mut self,
        originator: NodeId,
        chunks: &[OverlayAddress],
        mut on_push: F,
    ) -> UploadReport
    where
        F: FnMut(&ChunkDelivery),
    {
        let mut report = UploadReport {
            chunks: chunks.len(),
            stored: 0,
            stuck: 0,
            total_hops: 0,
        };
        for &chunk in chunks {
            let push = self.push_chunk(originator, chunk);
            if push.delivered() {
                report.stored += 1;
            } else {
                report.stuck += 1;
            }
            report.total_hops += push.hops.len();
            on_push(&push);
        }
        report
    }

    /// Pushes a single chunk toward its storer.
    pub fn push_chunk(&mut self, originator: NodeId, chunk: OverlayAddress) -> ChunkDelivery {
        self.stats.add_request(originator);
        let storer = self.topology.closest_node(chunk);
        if storer == originator {
            self.stored[originator.index()].insert(chunk.raw());
            return ChunkDelivery {
                originator,
                chunk,
                hops: Vec::new(),
                from_cache: false,
                outcome: RouteOutcome::AlreadyAtStorer,
            };
        }
        let mut hops: Vec<NodeId> = Vec::with_capacity(8);
        let mut current = originator;
        let outcome = loop {
            match self.topology.next_hop(current, chunk) {
                Some(next) => {
                    hops.push(next);
                    current = next;
                    if current == storer {
                        break RouteOutcome::Delivered;
                    }
                }
                None => break RouteOutcome::Stuck,
            }
        };
        match outcome {
            RouteOutcome::Delivered => {
                for &hop in &hops {
                    self.stats.add_forwarded(hop);
                }
                let first = hops.first().copied().expect("delivered implies >=1 hop");
                self.stats.add_first_hop(first);
                self.stats.add_storer(storer);
                self.stored[storer.index()].insert(chunk.raw());
            }
            RouteOutcome::Stuck => self.stats.add_stuck(),
            RouteOutcome::AlreadyAtStorer => unreachable!("handled above"),
        }
        ChunkDelivery {
            originator,
            chunk,
            hops,
            from_cache: false,
            outcome,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairswap_kademlia::{AddressSpace, TopologyBuilder};

    fn topology(nodes: usize, seed: u64) -> Topology {
        TopologyBuilder::new(AddressSpace::new(16).unwrap())
            .nodes(nodes)
            .bucket_size(4)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn uploads_place_chunks_on_global_closest() {
        let t = topology(200, 1);
        let mut sim = UploadSim::new(t.clone());
        let chunks: Vec<_> = (0..=0xFFFFu64)
            .step_by(977)
            .map(|raw| t.space().address(raw).unwrap())
            .collect();
        let report = sim.upload_file(NodeId(0), &chunks);
        assert_eq!(report.chunks, chunks.len());
        assert_eq!(report.stored + report.stuck, report.chunks);
        for &chunk in &chunks {
            let storer = t.closest_node(chunk);
            // Every successfully pushed chunk lives on its storer.
            if sim.stores(storer, chunk) {
                continue;
            }
            // Otherwise the route must have been stuck.
            assert!(report.stuck > 0);
        }
        let stored_total: usize = t.node_ids().map(|n| sim.stored_by(n)).sum();
        assert_eq!(stored_total, report.stored);
    }

    #[test]
    fn upload_route_matches_download_route() {
        // Same greedy path in both directions (paper Fig. 1: the chunk
        // travels the same route back).
        let t = topology(200, 3);
        let chunk = t.space().address(0x4242).unwrap();
        let origin = NodeId(7);
        let mut up = UploadSim::new(t.clone());
        let mut down = crate::download::DownloadSim::new(t.clone(), crate::CachePolicy::None);
        let pushed = up.push_chunk(origin, chunk);
        let fetched = down.request_chunk(origin, chunk);
        assert_eq!(pushed.hops, fetched.hops);
        assert_eq!(pushed.outcome, fetched.outcome);
    }

    #[test]
    fn self_storage_when_originator_is_closest() {
        let t = topology(100, 5);
        let chunk = t.space().address(0x1001).unwrap();
        let storer = t.closest_node(chunk);
        let mut sim = UploadSim::new(t.clone());
        let push = sim.push_chunk(storer, chunk);
        assert_eq!(push.outcome, RouteOutcome::AlreadyAtStorer);
        assert!(sim.stores(storer, chunk));
        assert_eq!(sim.stats().total_forwarded(), 0);
    }

    #[test]
    fn callback_sees_paid_first_hop() {
        let t = topology(150, 9);
        let mut sim = UploadSim::new(t.clone());
        let chunk = t.space().address(0xBEEF).unwrap();
        let mut first = None;
        sim.upload_file_with(NodeId(2), &[chunk], |p| first = p.first_hop());
        if let Some(first) = first {
            assert!(t.table(NodeId(2)).knows(first));
            assert_eq!(sim.stats().served_first_hop()[first.index()], 1);
        }
    }

    #[test]
    fn duplicate_uploads_store_once() {
        let t = topology(100, 11);
        let chunk = t.space().address(0x0F0F).unwrap();
        let storer = t.closest_node(chunk);
        let mut sim = UploadSim::new(t.clone());
        sim.push_chunk(NodeId(0), chunk);
        sim.push_chunk(NodeId(1), chunk);
        assert_eq!(sim.stored_by(storer), 1);
    }
}
