//! Routing policies: what a chunk request does when the greedy next hop
//! cannot take it.
//!
//! The paper's model fixes one rule — forward to the strictly-closest
//! known peer, drop when it is bandwidth-saturated. [`RoutePolicy`] makes
//! that rule a configuration axis so capacity-aware routing composes with
//! every other experiment dimension instead of being a hardcoded branch in
//! [`DownloadSim`](crate::DownloadSim).
//!
//! Policies are a closed, serde-stable enum rather than a trait object:
//! the next-hop choice sits on the innermost loop of every routed chunk,
//! and an enum keeps the greedy fast path branch-predictable and the spec
//! format stable. The open extension point of the policy layer is the
//! repair hook in `fairswap_core::policy`, which runs off the hot path.
//!
//! Determinism rules: a policy may consult only the topology, the target
//! address and the per-step capacity ledger — never wall-clock time or an
//! unseeded RNG — so a run stays a pure function of its configuration
//! seed for any thread count.

use serde::{Deserialize, Serialize};

/// How the download walk picks the next relay for a chunk request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutePolicy {
    /// The paper's rule: always forward to the strictly-closest known
    /// peer; if that peer has exhausted its per-step bandwidth budget the
    /// request is dropped (counted as stuck and capacity-blocked).
    #[default]
    Greedy,
    /// Greedy with a capacity escape hatch: when the closest known peer is
    /// saturated, try up to `max_detours` next-closest table entries that
    /// still improve on the current node's distance, taking the first
    /// unsaturated one (each such hop is counted as `detoured`). Only when
    /// every candidate is saturated is the request dropped. With unlimited
    /// capacity this is bit-for-bit identical to [`RoutePolicy::Greedy`]:
    /// the detour path never executes.
    CapacityDetour {
        /// Fallback candidates to try past the greedy choice (0 degrades
        /// to greedy behavior).
        max_detours: usize,
    },
}

impl RoutePolicy {
    /// A short stable identifier, used in CSV output and on the CLI.
    pub fn id(&self) -> &'static str {
        match self {
            Self::Greedy => "greedy",
            Self::CapacityDetour { .. } => "capacity-detour",
        }
    }

    /// Fallback candidates past the greedy choice (0 for greedy).
    pub fn max_detours(&self) -> usize {
        match *self {
            Self::Greedy => 0,
            Self::CapacityDetour { max_detours } => max_detours,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_and_detour_counts() {
        assert_eq!(RoutePolicy::Greedy.id(), "greedy");
        assert_eq!(RoutePolicy::Greedy.max_detours(), 0);
        let detour = RoutePolicy::CapacityDetour { max_detours: 3 };
        assert_eq!(detour.id(), "capacity-detour");
        assert_eq!(detour.max_detours(), 3);
        assert_eq!(RoutePolicy::default(), RoutePolicy::Greedy);
    }

    #[test]
    fn serde_round_trip() {
        for policy in [
            RoutePolicy::Greedy,
            RoutePolicy::CapacityDetour { max_detours: 2 },
        ] {
            let json = serde_json::to_string(&policy).unwrap();
            let back: RoutePolicy = serde_json::from_str(&json).unwrap();
            assert_eq!(back, policy);
        }
    }
}
