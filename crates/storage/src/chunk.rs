//! Chunks and files.

use serde::{Deserialize, Serialize};

use fairswap_kademlia::OverlayAddress;

/// Size of a Swarm content chunk: "All content in Swarm, fixed size chunks
/// of 4KB" (paper §III-A). The simulation accounts in whole chunks; this
/// constant converts chunk counts into bytes for reporting.
pub const CHUNK_SIZE_BYTES: u64 = 4096;

/// A file to download: the overlay addresses of its chunks.
///
/// The paper models a file as 100–1000 chunks at uniformly random addresses
/// ("a single originator requests a random number of chunks, between 100 an
/// 1000 [...] chosen uniformly at random from the complete address space").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileSpec {
    chunks: Vec<OverlayAddress>,
}

impl FileSpec {
    /// Creates a file from its chunk addresses.
    pub fn new(chunks: Vec<OverlayAddress>) -> Self {
        Self { chunks }
    }

    /// The chunk addresses.
    pub fn chunks(&self) -> &[OverlayAddress] {
        &self.chunks
    }

    /// Number of chunks.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// Whether the file has no chunks.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Total size in bytes at [`CHUNK_SIZE_BYTES`] per chunk.
    pub fn size_bytes(&self) -> u64 {
        self.chunks.len() as u64 * CHUNK_SIZE_BYTES
    }
}

impl FromIterator<OverlayAddress> for FileSpec {
    fn from_iter<I: IntoIterator<Item = OverlayAddress>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairswap_kademlia::AddressSpace;

    #[test]
    fn file_spec_basics() {
        let space = AddressSpace::new(16).unwrap();
        let file: FileSpec = (0..5u64).map(|i| space.address(i).unwrap()).collect();
        assert_eq!(file.len(), 5);
        assert!(!file.is_empty());
        assert_eq!(file.size_bytes(), 5 * 4096);
        assert_eq!(file.chunks().len(), 5);
    }

    #[test]
    fn empty_file() {
        let file = FileSpec::new(Vec::new());
        assert!(file.is_empty());
        assert_eq!(file.size_bytes(), 0);
    }
}
