//! The download process: route every chunk of a file, account the traffic.

use std::collections::BTreeMap;
use std::rc::Rc;

use serde::{Deserialize, Serialize};

use fairswap_kademlia::{NodeId, OverlayAddress, RouteOutcome, Topology};

use crate::cache::{CachePolicy, NodeCache};
use crate::route::RoutePolicy;
use crate::traffic::TrafficStats;

/// Where a repair re-upload is sourced from when a lost region is
/// re-replicated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepairSource {
    /// The surviving replica: the closest live node to the lost data that
    /// is not the repair destination itself. Models neighborhood
    /// replication — short repair routes, cheap recovery.
    #[default]
    Replica,
    /// The content originator re-seeds: the re-upload starts from the live
    /// node *farthest* from the lost data (the worst-case upload
    /// distance), modeling a publisher with no locality to the region.
    Originator,
}

impl RepairSource {
    /// Stable identifier used in CSV output and logs.
    pub fn id(&self) -> &'static str {
        match self {
            Self::Replica => "replica",
            Self::Originator => "originator",
        }
    }
}

/// Retry attempts past this exponent stop doubling their backoff (caps
/// the shift, not the retries).
const MAX_BACKOFF_SHIFT: u32 = 10;

/// One address region whose chunks are currently unreachable: every live
/// node sharing the region's prefix has departed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LostRegion {
    /// The departed storer's address — the repair target.
    anchor: u64,
    /// Step the region emptied at.
    lost_at: u64,
    /// Earliest step the next repair attempt may run.
    next_attempt: u64,
    /// Failed repair attempts so far (drives the doubling backoff).
    attempts: u32,
}

/// A failed user request waiting for its next retry attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingRetry {
    /// Step at which the retry becomes due.
    due_step: u64,
    /// The original requester.
    originator: NodeId,
    /// The chunk being retried.
    chunk: OverlayAddress,
    /// Attempt number (1 = first retry).
    attempt: u32,
}

/// Whether a route carries user traffic or a repair re-upload — the two
/// share capacity budgets and forwarding accounting but book their
/// outcomes into different counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RouteKind {
    User,
    Repair,
}

/// How one chunk request was resolved, as seen by the accounting layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkDelivery {
    /// The requesting node.
    pub originator: NodeId,
    /// The chunk address.
    pub chunk: OverlayAddress,
    /// Every node after the originator on the path, in forwarding order.
    /// The last entry served the chunk (storer or cache).
    pub hops: Vec<NodeId>,
    /// Whether the terminal node served from cache rather than storage.
    pub from_cache: bool,
    /// Routing outcome.
    pub outcome: RouteOutcome,
}

impl ChunkDelivery {
    /// The first hop — the "zero-proximity" peer the originator pays under
    /// Swarm's default settlement policy. `None` when the originator already
    /// held the chunk.
    pub fn first_hop(&self) -> Option<NodeId> {
        self.hops.first().copied()
    }

    /// The serving node (route terminal).
    pub fn server(&self) -> Option<NodeId> {
        self.hops.last().copied()
    }

    /// Whether the chunk reached the originator.
    pub fn delivered(&self) -> bool {
        self.outcome.is_delivered()
    }
}

/// Aggregate outcome of downloading one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileReport {
    /// Chunks requested.
    pub chunks: usize,
    /// Chunks delivered (including those already held by the originator).
    pub delivered: usize,
    /// Chunks lost to stuck routes.
    pub stuck: usize,
    /// Chunks served from some node's cache.
    pub cache_served: usize,
    /// Total hops across all chunk requests.
    pub total_hops: usize,
}

/// Simulates file downloads over a static topology, maintaining per-node
/// caches and traffic statistics.
///
/// One instance accumulates statistics across many downloads — one paper
/// "step" is one call to [`DownloadSim::download_file`].
#[derive(Debug, Clone)]
pub struct DownloadSim {
    topology: Rc<Topology>,
    caches: Vec<NodeCache>,
    stats: TrafficStats,
    cache_on_path: bool,
    /// What a request does when its greedy next hop is saturated.
    route: RoutePolicy,
    /// Recycled hop buffer: [`DownloadSim::download_file_with`] routes
    /// hundreds of chunks per call, and reusing one allocation across them
    /// keeps the per-step allocation count flat regardless of file size.
    route_buf: Vec<NodeId>,
    /// Recycled candidate buffer for the capacity-detour slow path.
    detour_buf: Vec<NodeId>,
    /// Per-node forwarding budget per simulation step (`None` = the
    /// paper's unlimited-capacity model).
    capacities: Option<Vec<u64>>,
    /// Chunks each node forwarded in the current step. Reset lazily via
    /// `used_stamp` so advancing a step is O(1) even at 10⁵ nodes.
    used_in_step: Vec<u64>,
    /// The step `used_in_step[i]` was last written at.
    used_stamp: Vec<u64>,
    /// Current step counter for the lazy reset (bumped by
    /// [`DownloadSim::advance_step`]).
    step: u64,
    /// Durability model: `Some(shift)` when a repair policy watches
    /// `neighborhood_bits`-wide regions (`shift = bits -
    /// neighborhood_bits`); `None` keeps the baseline
    /// responsibility-migrates-silently model byte-identical.
    region_shift: Option<u32>,
    /// Currently unreachable regions, keyed by address prefix
    /// (`raw >> region_shift`). `BTreeMap` keeps repair scheduling
    /// deterministic.
    lost_regions: BTreeMap<u64, LostRegion>,
    /// Reused scratch list of due region prefixes per repair pass.
    due_buf: Vec<u64>,
    /// Maximum retry attempts per failed user request (0 = the baseline
    /// drop-on-failure model).
    max_retries: u32,
    /// Base backoff in steps before the first retry; doubles per attempt.
    retry_backoff: u64,
    /// Failed user requests awaiting their retry step, in failure order.
    retry_queue: Vec<PendingRetry>,
}

impl DownloadSim {
    /// Creates a download simulator with the given per-node cache policy.
    ///
    /// Accepts a [`Topology`] by value or an `Rc<Topology>`; clone the `Rc`
    /// to share one overlay between several simulators (the paper reuses
    /// "the same overlay for multiple simulations").
    pub fn new(topology: impl Into<Rc<Topology>>, cache_policy: CachePolicy) -> Self {
        let topology = topology.into();
        let n = topology.len();
        Self {
            topology,
            caches: (0..n).map(|_| NodeCache::new(cache_policy)).collect(),
            stats: TrafficStats::new(n),
            cache_on_path: !matches!(cache_policy, CachePolicy::None),
            route: RoutePolicy::Greedy,
            route_buf: Vec::with_capacity(8),
            detour_buf: Vec::new(),
            capacities: None,
            used_in_step: vec![0; n],
            used_stamp: vec![0; n],
            step: 1,
            region_shift: None,
            lost_regions: BTreeMap::new(),
            due_buf: Vec::new(),
            max_retries: 0,
            retry_backoff: 1,
            retry_queue: Vec::new(),
        }
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// A cheap shared handle to the topology, for delivery callbacks that
    /// need `&Topology` while the simulator itself is mutably borrowed.
    /// Drop the handle before calling [`DownloadSim::topology_mut`], or the
    /// mutation pays for a copy-on-write clone.
    pub fn topology_rc(&self) -> Rc<Topology> {
        Rc::clone(&self.topology)
    }

    /// Mutable access to the topology for churn events (join/leave). Uses
    /// copy-on-write semantics: mutation is in-place whenever this
    /// simulator holds the only handle.
    pub fn topology_mut(&mut self) -> &mut Topology {
        Rc::make_mut(&mut self.topology)
    }

    /// Invalidates the state a departing node loses: its opportunistic
    /// cache is dropped (on rejoin it starts cold). Routing-table repair is
    /// the topology's job ([`Topology::remove_node`]); traffic counters and
    /// lifetime cache hit/miss statistics are historical facts and stay.
    pub fn on_node_leave(&mut self, node: NodeId) {
        if let Some(cache) = self.caches.get_mut(node.index()) {
            cache.clear_entries();
        }
    }

    /// Installs per-node bandwidth budgets: node `i` forwards at most
    /// `capacities[i]` chunks per simulation step; a request whose chosen
    /// next hop is saturated is dropped (counted as stuck and
    /// capacity-blocked). Budget windows advance via
    /// [`DownloadSim::advance_step`].
    ///
    /// # Panics
    ///
    /// Panics if `capacities` does not cover every node.
    pub fn set_capacities(&mut self, capacities: Vec<u64>) {
        assert_eq!(
            capacities.len(),
            self.topology.len(),
            "capacity budgets must cover every node"
        );
        self.capacities = Some(capacities);
    }

    /// The installed per-node budgets, if any.
    pub fn capacities(&self) -> Option<&[u64]> {
        self.capacities.as_deref()
    }

    /// Installs the routing policy (the default is [`RoutePolicy::Greedy`],
    /// the paper's drop-on-saturation rule). Only affects requests routed
    /// after the call.
    pub fn set_route_policy(&mut self, route: RoutePolicy) {
        self.route = route;
    }

    /// The routing policy in effect.
    pub fn route_policy(&self) -> RoutePolicy {
        self.route
    }

    /// Turns on the durability model: chunk responsibility no longer
    /// migrates silently on departure. When every live node sharing a
    /// `neighborhood_bits`-wide address prefix has departed, that region's
    /// chunks become unreachable until a repair re-upload (or nothing,
    /// under a monitor-only policy) restores them.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= neighborhood_bits < bits` — a full-width region
    /// would make every single departure a data loss.
    pub fn enable_durability(&mut self, neighborhood_bits: u32) {
        let bits = self.topology.space().bits();
        assert!(
            neighborhood_bits >= 1 && neighborhood_bits < bits,
            "neighborhood_bits must be in 1..{bits}"
        );
        self.region_shift = Some(bits - neighborhood_bits);
    }

    /// Number of regions currently unreachable (0 when the durability
    /// model is off).
    pub fn lost_region_count(&self) -> usize {
        self.lost_regions.len()
    }

    /// Installs the user-download retry policy: a failed request re-enters
    /// routing up to `max_retries` times, the first retry `backoff` steps
    /// after the failure and each later one after double the previous
    /// wait. `max_retries = 0` (the default) is the baseline
    /// drop-on-failure model and adds no work to any path.
    pub fn set_retry_policy(&mut self, max_retries: u32, backoff: u64) {
        self.max_retries = max_retries;
        self.retry_backoff = backoff.max(1);
    }

    /// Failed requests currently waiting for a retry step.
    pub fn pending_retries(&self) -> usize {
        self.retry_queue.len()
    }

    /// Records a departure under the durability model: if `node` was the
    /// last live member of its address region, the region's chunks become
    /// unreachable and a repair is scheduled. Returns `true` iff this
    /// departure newly emptied its region. Call *after* the topology
    /// removal. A no-op (always `false`) when durability is off.
    pub fn note_departure(&mut self, node: NodeId, step: u64) -> bool {
        let Some(shift) = self.region_shift else {
            return false;
        };
        let address = self.topology.address(node);
        let prefix = address.raw() >> shift;
        // The region is emptied iff the closest live node to the departed
        // address no longer shares its prefix (the trie walk visits the
        // region's subtree first, so one probe decides it).
        let survivor = self.topology.closest_live_nodes(address, 1);
        let emptied = match survivor.first() {
            Some(&peer) => self.topology.address(peer).raw() >> shift != prefix,
            None => true,
        };
        if !emptied || self.lost_regions.contains_key(&prefix) {
            return false;
        }
        self.lost_regions.insert(
            prefix,
            LostRegion {
                anchor: address.raw(),
                lost_at: step,
                next_attempt: step + 1,
                attempts: 0,
            },
        );
        true
    }

    /// Runs every due repair re-upload for the current step. Each lost
    /// region gets one representative transfer from the `source` node
    /// (surviving replica or originator re-seed) to the region's new
    /// storer, routed through the same capacity-constrained forwarding as
    /// user traffic — repair competes for bandwidth. `on_delivery` fires
    /// for every completed transfer so the incentive layer can pay the
    /// repairers. Failed attempts reschedule with doubling backoff.
    ///
    /// Returns the number of repairs completed this pass. A no-op under
    /// monitor-only durability if the caller never invokes it, and always
    /// a no-op when no region is lost.
    pub fn run_repairs<F>(&mut self, source: RepairSource, mut on_delivery: F) -> u64
    where
        F: FnMut(&ChunkDelivery),
    {
        if self.lost_regions.is_empty() {
            return 0;
        }
        let step = self.step;
        let mut due = std::mem::take(&mut self.due_buf);
        due.clear();
        due.extend(
            self.lost_regions
                .iter()
                .filter(|(_, r)| r.next_attempt <= step)
                .map(|(&prefix, _)| prefix),
        );
        let mut completed = 0;
        let mut hops = std::mem::take(&mut self.route_buf);
        for prefix in due.drain(..) {
            let region = self.lost_regions[&prefix];
            let target = self
                .topology
                .space()
                .address(region.anchor)
                .expect("lost-region anchor was a node address");
            let destination = self.topology.closest_node(target);
            let Some(from) = self.repair_source_node(source, target, destination) else {
                // No live node can source the repair; try again later.
                self.reschedule(prefix, step);
                continue;
            };
            self.stats.add_repair_transfer();
            if from == destination {
                // The replica already sits where the data belongs: a
                // zero-traffic restore.
                self.complete_repair(prefix, region, step);
                completed += 1;
                on_delivery(&ChunkDelivery {
                    originator: from,
                    chunk: target,
                    hops: Vec::new(),
                    from_cache: false,
                    outcome: RouteOutcome::AlreadyAtStorer,
                });
                continue;
            }
            hops.clear();
            let (outcome, _) = self.route_chunk_kind(from, target, &mut hops, RouteKind::Repair);
            if outcome.is_delivered() {
                self.complete_repair(prefix, region, step);
                completed += 1;
                let delivery = ChunkDelivery {
                    originator: from,
                    chunk: target,
                    hops,
                    from_cache: false,
                    outcome,
                };
                on_delivery(&delivery);
                hops = delivery.hops;
            } else {
                self.reschedule(prefix, step);
            }
        }
        self.route_buf = hops;
        self.due_buf = due;
        completed
    }

    /// The node a repair transfer starts from: the nearest surviving
    /// replica, or the farthest live node (the originator re-seeding from
    /// maximum distance). `None` only when the overlay has no live nodes.
    fn repair_source_node(
        &self,
        source: RepairSource,
        target: OverlayAddress,
        destination: NodeId,
    ) -> Option<NodeId> {
        match source {
            RepairSource::Replica => {
                // The closest live node IS the destination; the survivor
                // holding a replica is the next one out.
                let near = self.topology.closest_live_nodes(target, 2);
                near.iter()
                    .copied()
                    .find(|&n| n != destination)
                    .or(near.first().copied())
            }
            RepairSource::Originator => {
                // The live node farthest from `target` under XOR is the
                // one closest to its bitwise complement.
                let space = self.topology.space();
                let mirror = space
                    .address(!target.raw() & space.max_raw())
                    .expect("masked complement is in range");
                self.topology.closest_live_nodes(mirror, 1).first().copied()
            }
        }
    }

    fn complete_repair(&mut self, prefix: u64, region: LostRegion, step: u64) {
        self.lost_regions.remove(&prefix);
        self.stats.add_repair_delivered();
        self.stats
            .add_repair_wait(step.saturating_sub(region.lost_at));
    }

    fn reschedule(&mut self, prefix: u64, step: u64) {
        if let Some(region) = self.lost_regions.get_mut(&prefix) {
            region.attempts += 1;
            let shift = region.attempts.min(MAX_BACKOFF_SHIFT);
            region.next_attempt = step + (1u64 << shift);
        }
    }

    /// Folds the ages of still-unreachable regions into the
    /// time-to-repair maximum, so a region that never recovered shows up
    /// as (at least) its full unrepaired lifetime. Call once at run end
    /// with the final step count.
    pub fn finalize_durability(&mut self, final_step: u64) {
        for region in self.lost_regions.values() {
            self.stats
                .raise_repair_wait_max(final_step.saturating_sub(region.lost_at));
        }
    }

    /// Re-routes every retry that has come due this step, as fresh
    /// request attempts: a retried route that succeeds counts into
    /// `recovered`, one that fails either re-enqueues (attempts left) or
    /// counts into `abandoned`. `on_delivery` fires for delivered retries
    /// exactly like first-attempt user traffic.
    pub fn drain_retries<F>(&mut self, mut on_delivery: F)
    where
        F: FnMut(&ChunkDelivery),
    {
        if self.retry_queue.is_empty() {
            return;
        }
        let step = self.step;
        let mut queue = std::mem::take(&mut self.retry_queue);
        let mut hops = std::mem::take(&mut self.route_buf);
        for entry in queue.drain(..) {
            if entry.due_step > step {
                self.retry_queue.push(entry);
                continue;
            }
            self.stats.add_retried();
            hops.clear();
            let (outcome, from_cache) =
                self.route_chunk_kind(entry.originator, entry.chunk, &mut hops, RouteKind::User);
            if outcome.is_delivered() {
                self.stats.add_recovered();
                let delivery = ChunkDelivery {
                    originator: entry.originator,
                    chunk: entry.chunk,
                    hops,
                    from_cache,
                    outcome,
                };
                on_delivery(&delivery);
                hops = delivery.hops;
            } else if entry.attempt < self.max_retries {
                let shift = entry.attempt.min(MAX_BACKOFF_SHIFT);
                self.retry_queue.push(PendingRetry {
                    due_step: step + (self.retry_backoff << shift),
                    originator: entry.originator,
                    chunk: entry.chunk,
                    attempt: entry.attempt + 1,
                });
            } else {
                self.stats.add_abandoned();
            }
        }
        // Entries enqueued by this pass land behind the survivors, in
        // deterministic processing order.
        self.route_buf = hops;
        if self.retry_queue.capacity() < queue.capacity() {
            // Keep the larger allocation for the next pass.
            queue.clear();
            queue.append(&mut self.retry_queue);
            self.retry_queue = queue;
        }
    }

    /// Opens the next budget window: every node's per-step forwarding
    /// usage resets. O(1) — usage counters are stamped per step and reset
    /// lazily on first touch. A no-op without capacity budgets.
    pub fn advance_step(&mut self) {
        self.step += 1;
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// The cache of one node.
    pub fn cache(&self, node: NodeId) -> Option<&NodeCache> {
        self.caches.get(node.index())
    }

    /// Network-wide cache counters summed over every node's cache
    /// (including nodes currently offline — their history is a fact).
    pub fn cache_totals(&self) -> crate::cache::CacheTotals {
        let mut totals = crate::cache::CacheTotals::default();
        for cache in &self.caches {
            cache.add_totals(&mut totals);
        }
        totals
    }

    /// Downloads all chunks of a file, updating statistics.
    pub fn download_file(&mut self, originator: NodeId, chunks: &[OverlayAddress]) -> FileReport {
        self.download_file_with(originator, chunks, |_| {})
    }

    /// Downloads all chunks of a file, invoking `on_delivery` for every
    /// chunk so callers (e.g. incentive mechanisms) can account payments.
    ///
    /// The hop vector inside the [`ChunkDelivery`] handed to `on_delivery`
    /// is recycled across the file's chunks (and across calls), so a
    /// thousand-chunk download performs O(1) route allocations rather than
    /// one per chunk.
    pub fn download_file_with<F>(
        &mut self,
        originator: NodeId,
        chunks: &[OverlayAddress],
        mut on_delivery: F,
    ) -> FileReport
    where
        F: FnMut(&ChunkDelivery),
    {
        let mut report = FileReport {
            chunks: chunks.len(),
            delivered: 0,
            stuck: 0,
            cache_served: 0,
            total_hops: 0,
        };
        let mut hops = std::mem::take(&mut self.route_buf);
        for &chunk in chunks {
            hops.clear();
            let (outcome, from_cache) = self.route_chunk(originator, chunk, &mut hops);
            let delivery = ChunkDelivery {
                originator,
                chunk,
                hops,
                from_cache,
                outcome,
            };
            if delivery.delivered() {
                report.delivered += 1;
            } else {
                report.stuck += 1;
                if self.max_retries > 0 {
                    self.retry_queue.push(PendingRetry {
                        due_step: self.step + self.retry_backoff,
                        originator,
                        chunk,
                        attempt: 1,
                    });
                }
            }
            if delivery.from_cache {
                report.cache_served += 1;
            }
            report.total_hops += delivery.hops.len();
            on_delivery(&delivery);
            // Reclaim the hop allocation for the next chunk.
            hops = delivery.hops;
        }
        self.route_buf = hops;
        report
    }

    /// Routes a single chunk request and updates the statistics.
    pub fn request_chunk(&mut self, originator: NodeId, chunk: OverlayAddress) -> ChunkDelivery {
        // Route through the recycled buffer; the returned delivery owns
        // its hop vector, so copy out exactly the hops taken (zero-hop
        // outcomes allocate nothing) instead of growing a fresh vector
        // hop by hop.
        let mut hops = std::mem::take(&mut self.route_buf);
        hops.clear();
        let (outcome, from_cache) = self.route_chunk(originator, chunk, &mut hops);
        let delivery = ChunkDelivery {
            originator,
            chunk,
            hops: hops.as_slice().to_vec(),
            from_cache,
            outcome,
        };
        self.route_buf = hops;
        delivery
    }

    /// The greedy forwarding-Kademlia walk behind every chunk request, with
    /// one refinement when caching is enabled: a hop holding the chunk in
    /// cache serves it immediately, cutting the route short. On delivery
    /// the chunk is inserted into the caches of every node on the return
    /// path, which is how Swarm populates caches opportunistically.
    ///
    /// `hops` must arrive empty; the path is appended to it.
    fn route_chunk(
        &mut self,
        originator: NodeId,
        chunk: OverlayAddress,
        hops: &mut Vec<NodeId>,
    ) -> (RouteOutcome, bool) {
        self.route_chunk_kind(originator, chunk, hops, RouteKind::User)
    }

    /// The route walk shared by user requests and repair re-uploads. Both
    /// consume per-hop capacity and book forwarding work; only user
    /// traffic touches requests/stuck/cache counters, and only user
    /// traffic can be refused by the durability fault check (a repair
    /// route *into* a lost region is exactly what restores it).
    fn route_chunk_kind(
        &mut self,
        originator: NodeId,
        chunk: OverlayAddress,
        hops: &mut Vec<NodeId>,
        kind: RouteKind,
    ) -> (RouteOutcome, bool) {
        debug_assert!(hops.is_empty());
        let user = kind == RouteKind::User;
        if user {
            self.stats.add_request(originator);
            // Fault injection: a chunk whose region has no live member is
            // unreachable even if the originator is now XOR-closest to it
            // — nobody holds the data until a repair re-uploads it.
            if let Some(shift) = self.region_shift {
                if self.lost_regions.contains_key(&(chunk.raw() >> shift)) {
                    self.stats.add_unreachable();
                    self.stats.add_stuck();
                    return (RouteOutcome::Stuck, false);
                }
            }
        }
        let storer = self.topology.closest_node(chunk);
        if storer == originator {
            return (RouteOutcome::AlreadyAtStorer, false);
        }

        // The walk borrows each concern once, up front: the topology (one
        // `Rc` deref for the whole route), the capacity table (the
        // budget-disabled common case decides a single `Option` branch
        // here, not one per hop), and the cache flag. Field-disjoint
        // borrows let the loop update budgets and caches while the
        // topology stays borrowed.
        let topology: &Topology = &self.topology;
        let capacities = self.capacities.as_deref();
        let used_in_step = &mut self.used_in_step;
        let used_stamp = &mut self.used_stamp;
        let caches = &mut self.caches;
        let detour_buf = &mut self.detour_buf;
        let use_cache = self.cache_on_path && user;
        let max_detours = self.route.max_detours();
        let step = self.step;

        let mut current = originator;
        let (outcome, from_cache) = loop {
            let Some(mut next) = topology.next_hop(current, chunk) else {
                break (RouteOutcome::Stuck, false);
            };
            if let Some(capacities) = capacities {
                // Bandwidth budgets are enforced at forwarding time: a
                // saturated next hop cannot serve this step. Greedy
                // forwarding-Kademlia has no detour, so it drops the
                // request; the capacity-detour policy first tries the
                // next-closest table entries that still make progress.
                // Capacity is consumed whether or not the route later
                // completes — the bandwidth was spent.
                let i = next.index();
                if used_stamp[i] != step {
                    used_stamp[i] = step;
                    used_in_step[i] = 0;
                }
                if used_in_step[i] >= capacities[i] {
                    let Some(fallback) = detour_hop(
                        topology,
                        current,
                        chunk,
                        max_detours,
                        capacities,
                        used_in_step,
                        used_stamp,
                        step,
                        detour_buf,
                    ) else {
                        if user {
                            self.stats.add_capacity_blocked();
                        }
                        break (RouteOutcome::Stuck, false);
                    };
                    if user {
                        self.stats.add_detoured();
                    }
                    next = fallback;
                }
                used_in_step[next.index()] += 1;
            }
            hops.push(next);
            current = next;
            if current == storer {
                break (RouteOutcome::Delivered, false);
            }
            if use_cache && caches[current.index()].lookup(chunk) {
                break (RouteOutcome::Delivered, true);
            }
        };

        match outcome {
            RouteOutcome::Delivered => {
                // Every node on the path transmits the chunk downstream —
                // repair re-uploads included; their relays do real work.
                for &hop in hops.iter() {
                    self.stats.add_forwarded(hop);
                }
                if user {
                    let first = hops.first().copied().expect("delivered implies >=1 hop");
                    self.stats.add_first_hop(first);
                    let server = *hops.last().expect("delivered implies >=1 hop");
                    if from_cache {
                        self.stats.add_cache_serve(server);
                    } else {
                        self.stats.add_storer(server);
                    }
                    // Populate caches along the return path (excluding the
                    // server itself, which already has the chunk).
                    if self.cache_on_path {
                        for &hop in hops.iter().take(hops.len().saturating_sub(1)) {
                            self.caches[hop.index()].insert(chunk);
                        }
                    }
                }
            }
            RouteOutcome::Stuck => {
                if user {
                    self.stats.add_stuck();
                }
            }
            RouteOutcome::AlreadyAtStorer => unreachable!("handled above"),
        }
        (outcome, from_cache)
    }
}

/// The capacity-detour slow path: when the greedy next hop of `current`
/// toward `chunk` is saturated, pick the nearest of up to `max_detours`
/// farther table entries that still strictly improves on `current`'s own
/// distance and has budget left this step. Returns `None` when every
/// candidate is saturated (or the policy is greedy, `max_detours == 0`).
///
/// The candidate ranking is re-derived from the topology, so the first
/// entry is exactly the saturated greedy choice and is skipped. Budget
/// stamps of inspected candidates are refreshed so the caller can charge
/// the returned hop with a plain increment.
#[allow(clippy::too_many_arguments)]
fn detour_hop(
    topology: &Topology,
    current: NodeId,
    chunk: OverlayAddress,
    max_detours: usize,
    capacities: &[u64],
    used_in_step: &mut [u64],
    used_stamp: &mut [u64],
    step: u64,
    detour_buf: &mut Vec<NodeId>,
) -> Option<NodeId> {
    if max_detours == 0 {
        return None;
    }
    topology.next_hops_into(current, chunk, max_detours.saturating_add(1), detour_buf);
    debug_assert_eq!(
        detour_buf.first().copied(),
        topology.next_hop(current, chunk),
        "the ranked candidate list must lead with the greedy choice"
    );
    for &candidate in detour_buf.iter().skip(1) {
        let i = candidate.index();
        if used_stamp[i] != step {
            used_stamp[i] = step;
            used_in_step[i] = 0;
        }
        if used_in_step[i] < capacities[i] {
            return Some(candidate);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairswap_kademlia::{AddressSpace, TopologyBuilder};

    fn topology(nodes: usize, k: usize, seed: u64) -> Topology {
        TopologyBuilder::new(AddressSpace::new(16).unwrap())
            .nodes(nodes)
            .bucket_size(k)
            .seed(seed)
            .build()
            .unwrap()
    }

    fn chunk_addresses(t: &Topology, step: usize) -> Vec<OverlayAddress> {
        (0..=0xFFFFu64)
            .step_by(step)
            .map(|raw| t.space().address(raw).unwrap())
            .collect()
    }

    #[test]
    fn download_accounts_forwarding_and_first_hops() {
        let t = topology(300, 4, 1);
        let mut sim = DownloadSim::new(t.clone(), CachePolicy::None);
        let chunks = chunk_addresses(&t, 97);
        let mut delivered_hops = 0u64;
        let report = sim.download_file_with(NodeId(0), &chunks, |d| {
            if d.delivered() {
                delivered_hops += d.hops.len() as u64;
            }
        });
        assert_eq!(report.chunks, chunks.len());
        assert_eq!(report.delivered + report.stuck, report.chunks);
        assert_eq!(report.cache_served, 0);
        // Forwarding counts transmissions on delivered routes only.
        assert_eq!(sim.stats().total_forwarded(), delivered_hops);
    }

    #[test]
    fn first_hop_counts_match_deliveries() {
        let t = topology(200, 4, 3);
        let mut sim = DownloadSim::new(t.clone(), CachePolicy::None);
        let chunks = chunk_addresses(&t, 211);
        let mut delivered_with_hops = 0u64;
        sim.download_file_with(NodeId(5), &chunks, |d| {
            if d.delivered() && !d.hops.is_empty() {
                delivered_with_hops += 1;
            }
        });
        let first_hop_total: u64 = sim.stats().served_first_hop().iter().sum();
        assert_eq!(first_hop_total, delivered_with_hops);
    }

    #[test]
    fn callback_reports_route_details() {
        let t = topology(150, 4, 9);
        let mut sim = DownloadSim::new(t.clone(), CachePolicy::None);
        let chunk = t.space().address(0x7777).unwrap();
        let mut seen = None;
        sim.download_file_with(NodeId(2), &[chunk], |d| seen = Some(d.clone()));
        let d = seen.unwrap();
        assert_eq!(d.originator, NodeId(2));
        assert_eq!(d.chunk, chunk);
        if d.delivered() && !d.hops.is_empty() {
            assert_eq!(d.server(), Some(t.closest_node(chunk)));
            assert_eq!(d.first_hop(), d.hops.first().copied());
        }
    }

    #[test]
    fn caching_shortens_repeat_routes() {
        let t = topology(300, 4, 5);
        let chunk = t.space().address(0x00FF).unwrap();
        // Pick an originator far from the chunk so the route is non-trivial.
        let storer = t.closest_node(chunk);
        let originator = t
            .node_ids()
            .max_by_key(|n| t.space().distance(t.address(*n), chunk))
            .unwrap();
        assert_ne!(originator, storer);

        let mut cached = DownloadSim::new(t.clone(), CachePolicy::Lru { capacity: 64 });
        let first = cached.request_chunk(originator, chunk);
        let second = cached.request_chunk(originator, chunk);
        assert!(first.delivered());
        assert!(second.delivered());
        if first.hops.len() > 1 {
            assert!(second.from_cache, "second request should hit a path cache");
            assert!(second.hops.len() < first.hops.len());
        }
    }

    #[test]
    fn no_cache_means_identical_repeat_routes() {
        let t = topology(300, 4, 5);
        let chunk = t.space().address(0x00FF).unwrap();
        let originator = NodeId(7);
        let mut sim = DownloadSim::new(t.clone(), CachePolicy::None);
        let a = sim.request_chunk(originator, chunk);
        let b = sim.request_chunk(originator, chunk);
        assert_eq!(a.hops, b.hops);
        assert!(!b.from_cache);
    }

    #[test]
    fn originator_holding_chunk_generates_no_traffic() {
        let t = topology(100, 4, 11);
        let chunk = t.space().address(0x1234).unwrap();
        let storer = t.closest_node(chunk);
        let mut sim = DownloadSim::new(t.clone(), CachePolicy::None);
        let d = sim.request_chunk(storer, chunk);
        assert_eq!(d.outcome, RouteOutcome::AlreadyAtStorer);
        assert!(d.hops.is_empty());
        assert_eq!(sim.stats().total_forwarded(), 0);
        assert_eq!(sim.stats().requests_issued()[storer.index()], 1);
    }

    #[test]
    fn churned_topology_reroutes_to_surviving_storer() {
        let t = topology(250, 4, 17);
        let chunk = t.space().address(0x0F0F).unwrap();
        let storer = t.closest_node(chunk);
        let originator = t
            .node_ids()
            .max_by_key(|n| t.space().distance(t.address(*n), chunk))
            .unwrap();
        let mut sim = DownloadSim::new(t, CachePolicy::None);
        let before = sim.request_chunk(originator, chunk);
        assert!(before.delivered());
        assert_eq!(before.server(), Some(storer));

        // The storer departs: the chunk's responsibility migrates to the
        // closest surviving node and routes avoid the dead peer.
        sim.topology_mut().remove_node(storer).unwrap();
        sim.on_node_leave(storer);
        let after = sim.request_chunk(originator, chunk);
        if after.delivered() {
            let new_storer = sim.topology().closest_node(chunk);
            assert_ne!(new_storer, storer);
            assert_eq!(after.server(), Some(new_storer));
            assert!(!after.hops.contains(&storer));
        }
    }

    #[test]
    fn departure_clears_cache_entries_but_not_statistics() {
        let t = topology(200, 4, 19);
        let chunk = t.space().address(0x00AA).unwrap();
        let originator = t
            .node_ids()
            .max_by_key(|n| t.space().distance(t.address(*n), chunk))
            .unwrap();
        let mut sim = DownloadSim::new(t, CachePolicy::Lru { capacity: 32 });
        let first = sim.request_chunk(originator, chunk);
        let second = sim.request_chunk(originator, chunk);
        if first.hops.len() > 1 && second.from_cache {
            let cache_holder = *second.hops.last().unwrap();
            let hits_before = sim.cache(cache_holder).unwrap().hits();
            assert!(hits_before > 0);
            sim.on_node_leave(cache_holder);
            let cache = sim.cache(cache_holder).unwrap();
            assert!(cache.is_empty(), "departed cache must be dropped");
            assert_eq!(cache.hits(), hits_before, "history must survive");
        }
    }

    #[test]
    fn capacity_budgets_block_saturated_hops_and_reset_per_step() {
        let t = topology(200, 4, 23);
        let chunk = t.space().address(0x0F0F).unwrap();
        let originator = t
            .node_ids()
            .max_by_key(|n| t.space().distance(t.address(*n), chunk))
            .unwrap();
        let mut sim = DownloadSim::new(t.clone(), CachePolicy::None);
        let unconstrained = sim.request_chunk(originator, chunk);
        assert!(unconstrained.delivered() && !unconstrained.hops.is_empty());

        // Give every node exactly the budget the route needs once.
        let mut sim = DownloadSim::new(t, CachePolicy::None);
        sim.set_capacities(vec![1; 200]);
        assert_eq!(sim.capacities().unwrap().len(), 200);
        let first = sim.request_chunk(originator, chunk);
        assert!(first.delivered());
        // The same route again in the same step saturates the first hop.
        let second = sim.request_chunk(originator, chunk);
        assert!(!second.delivered());
        assert_eq!(sim.stats().capacity_blocked(), 1);
        assert_eq!(sim.stats().stuck_requests(), 1);
        // A new step opens fresh budget windows.
        sim.advance_step();
        let third = sim.request_chunk(originator, chunk);
        assert!(third.delivered());
        assert_eq!(third.hops, first.hops);
        assert_eq!(sim.stats().capacity_blocked(), 1);
    }

    #[test]
    fn generous_budgets_change_nothing() {
        let t = topology(150, 4, 29);
        let chunks = chunk_addresses(&t, 301);
        let mut plain = DownloadSim::new(t.clone(), CachePolicy::None);
        let baseline = plain.download_file(NodeId(3), &chunks);
        let mut budgeted = DownloadSim::new(t, CachePolicy::None);
        budgeted.set_capacities(vec![u64::MAX; 150]);
        let constrained = budgeted.download_file(NodeId(3), &chunks);
        assert_eq!(baseline, constrained);
        assert_eq!(plain.stats(), budgeted.stats());
        assert_eq!(budgeted.stats().capacity_blocked(), 0);
    }

    #[test]
    fn detour_routes_around_saturated_first_hop() {
        let t = topology(200, 4, 23);
        let chunk = t.space().address(0x0F0F).unwrap();
        let originator = t
            .node_ids()
            .max_by_key(|n| t.space().distance(t.address(*n), chunk))
            .unwrap();

        // Find the greedy route, then starve exactly its first hop so the
        // detour has an otherwise-unconstrained overlay to escape into.
        let mut probe = DownloadSim::new(t.clone(), CachePolicy::None);
        let first = probe.request_chunk(originator, chunk);
        assert!(first.delivered() && first.hops.len() > 1);
        let starved = first.first_hop().unwrap();
        let mut budgets = vec![u64::MAX; 200];
        budgets[starved.index()] = 1;

        // Greedy baseline: the second identical request dies on the
        // saturated first hop.
        let mut greedy = DownloadSim::new(t.clone(), CachePolicy::None);
        greedy.set_capacities(budgets.clone());
        assert!(greedy.request_chunk(originator, chunk).delivered());
        assert!(!greedy.request_chunk(originator, chunk).delivered());
        assert_eq!(greedy.stats().capacity_blocked(), 1);

        // Detour: the same second request escapes through a fallback relay.
        let mut detour = DownloadSim::new(t, CachePolicy::None);
        detour.set_route_policy(RoutePolicy::CapacityDetour { max_detours: 4 });
        assert_eq!(detour.route_policy().max_detours(), 4);
        detour.set_capacities(budgets);
        let a = detour.request_chunk(originator, chunk);
        assert_eq!(a.hops, first.hops, "unsaturated route is the greedy one");
        let b = detour.request_chunk(originator, chunk);
        assert!(b.delivered(), "detour must route around the saturated hop");
        assert_ne!(b.hops.first(), a.hops.first());
        assert!(!b.hops.contains(&starved));
        assert!(detour.stats().detoured() > 0);
        assert_eq!(detour.stats().capacity_blocked(), 0);
    }

    #[test]
    fn detour_with_unlimited_capacity_is_bit_identical_to_greedy() {
        let t = topology(250, 4, 31);
        let chunks = chunk_addresses(&t, 97);
        let mut greedy = DownloadSim::new(t.clone(), CachePolicy::None);
        greedy.set_capacities(vec![u64::MAX; 250]);
        let mut detour = DownloadSim::new(t, CachePolicy::None);
        detour.set_route_policy(RoutePolicy::CapacityDetour { max_detours: 8 });
        detour.set_capacities(vec![u64::MAX; 250]);
        for (step, origin) in [3usize, 77, 145].into_iter().enumerate() {
            let a = greedy.download_file(NodeId(origin), &chunks);
            let b = detour.download_file(NodeId(origin), &chunks);
            assert_eq!(a, b, "origin {origin}");
            greedy.advance_step();
            detour.advance_step();
            let _ = step;
        }
        assert_eq!(greedy.stats(), detour.stats());
        assert_eq!(detour.stats().detoured(), 0);
    }

    #[test]
    fn huge_max_detours_does_not_overflow() {
        let t = topology(200, 4, 23);
        let chunk = t.space().address(0x0F0F).unwrap();
        let originator = t
            .node_ids()
            .max_by_key(|n| t.space().distance(t.address(*n), chunk))
            .unwrap();
        let mut sim = DownloadSim::new(t, CachePolicy::None);
        sim.set_route_policy(RoutePolicy::CapacityDetour {
            max_detours: usize::MAX,
        });
        sim.set_capacities(vec![1; 200]);
        assert!(sim.request_chunk(originator, chunk).delivered());
        // The saturated retry must take the detour slow path (limit
        // saturates instead of wrapping to 0) without panicking.
        let second = sim.request_chunk(originator, chunk);
        assert!(second.delivered() || sim.stats().capacity_blocked() > 0);
        assert!(sim.stats().detoured() > 0);
    }

    #[test]
    fn zero_max_detours_behaves_exactly_like_greedy() {
        let t = topology(200, 4, 23);
        let chunk = t.space().address(0x0F0F).unwrap();
        let originator = t
            .node_ids()
            .max_by_key(|n| t.space().distance(t.address(*n), chunk))
            .unwrap();
        let mut sim = DownloadSim::new(t, CachePolicy::None);
        sim.set_route_policy(RoutePolicy::CapacityDetour { max_detours: 0 });
        sim.set_capacities(vec![1; 200]);
        assert!(sim.request_chunk(originator, chunk).delivered());
        assert!(!sim.request_chunk(originator, chunk).delivered());
        assert_eq!(sim.stats().capacity_blocked(), 1);
        assert_eq!(sim.stats().detoured(), 0);
    }

    #[test]
    #[should_panic(expected = "cover every node")]
    fn capacity_budgets_must_cover_every_node() {
        let t = topology(100, 4, 31);
        let mut sim = DownloadSim::new(t, CachePolicy::None);
        sim.set_capacities(vec![1; 99]);
    }

    #[test]
    fn empty_file_download() {
        let t = topology(100, 4, 13);
        let mut sim = DownloadSim::new(t.clone(), CachePolicy::None);
        let report = sim.download_file(NodeId(0), &[]);
        assert_eq!(report.chunks, 0);
        assert_eq!(report.delivered, 0);
        assert_eq!(report.total_hops, 0);
    }

    /// A node that is the only live member of its `neighborhood_bits`
    /// region, by prefix count over the whole overlay.
    fn sole_region_member(t: &Topology, shift: u32) -> NodeId {
        use std::collections::HashMap;
        let mut counts: HashMap<u64, u32> = HashMap::new();
        for n in t.node_ids() {
            *counts.entry(t.address(n).raw() >> shift).or_default() += 1;
        }
        t.node_ids()
            .find(|&n| counts[&(t.address(n).raw() >> shift)] == 1)
            .expect("some region has exactly one member")
    }

    #[test]
    fn durability_off_ignores_departures_and_retries() {
        let t = topology(200, 4, 7);
        let mut sim = DownloadSim::new(t.clone(), CachePolicy::None);
        let gone = NodeId(9);
        sim.topology_mut().remove_node(gone).unwrap();
        sim.on_node_leave(gone);
        assert!(!sim.note_departure(gone, 1), "no-op without durability");
        assert_eq!(sim.lost_region_count(), 0);
        assert_eq!(sim.pending_retries(), 0);
        sim.drain_retries(|_| panic!("no retries without a retry policy"));
        assert_eq!(sim.run_repairs(RepairSource::Replica, |_| {}), 0);
        assert_eq!(sim.stats().unreachable_requests(), 0);
        assert_eq!(sim.stats().repair_transfers(), 0);
    }

    #[test]
    fn departure_empties_region_and_blocks_requests() {
        let t = topology(300, 4, 41);
        let shift = 16 - 8;
        let lone = sole_region_member(&t, shift);
        let chunk = t.address(lone);
        let mut sim = DownloadSim::new(t, CachePolicy::None);
        sim.enable_durability(8);

        sim.topology_mut().remove_node(lone).unwrap();
        sim.on_node_leave(lone);
        assert!(sim.note_departure(lone, 1), "region newly emptied");
        assert!(!sim.note_departure(lone, 1), "already recorded");
        assert_eq!(sim.lost_region_count(), 1);

        // Any chunk in the lost region is unreachable, even though the
        // overlay would happily route toward a new closest node.
        let d = sim.request_chunk(NodeId(0), chunk);
        assert!(!d.delivered());
        assert!(d.hops.is_empty());
        assert_eq!(sim.stats().unreachable_requests(), 1);
        assert_eq!(sim.stats().stuck_requests(), 1);
    }

    #[test]
    fn departure_with_surviving_neighbor_loses_nothing() {
        let t = topology(300, 4, 41);
        let shift = 16 - 2; // 4 regions over 300 nodes: all well-populated
        let any = NodeId(3);
        let mut sim = DownloadSim::new(t, CachePolicy::None);
        sim.enable_durability(2);
        sim.topology_mut().remove_node(any).unwrap();
        sim.on_node_leave(any);
        assert!(!sim.note_departure(any, 1));
        assert_eq!(sim.lost_region_count(), 0);
        let _ = shift;
    }

    #[test]
    fn repair_restores_reachability_and_accounts_traffic() {
        let t = topology(300, 4, 41);
        let lone = sole_region_member(&t, 16 - 8);
        let chunk = t.address(lone);
        let mut sim = DownloadSim::new(t, CachePolicy::None);
        sim.enable_durability(8);
        sim.topology_mut().remove_node(lone).unwrap();
        sim.on_node_leave(lone);
        assert!(sim.note_departure(lone, 1));

        // Repairs scheduled at step 1 become due at step 2.
        assert_eq!(sim.run_repairs(RepairSource::Replica, |_| {}), 0);
        sim.advance_step();
        let mut paid = 0;
        let repaired = sim.run_repairs(RepairSource::Replica, |d| {
            assert!(d.delivered());
            paid += 1;
        });
        assert_eq!(repaired, 1);
        assert_eq!(paid, 1, "every completed repair fires the payment hook");
        assert_eq!(sim.lost_region_count(), 0);
        assert_eq!(sim.stats().repair_transfers(), 1);
        assert_eq!(sim.stats().repair_delivered(), 1);
        assert_eq!(sim.stats().repair_wait_max(), 1);
        assert!((sim.stats().mean_time_to_repair() - 1.0).abs() < 1e-12);

        // The region is reachable again; requests flow normally.
        let after = sim.request_chunk(NodeId(0), chunk);
        assert!(after.delivered());
        assert_eq!(sim.stats().unreachable_requests(), 0);

        // Repair traffic never touched the user-request books.
        assert_eq!(sim.stats().requests_issued().iter().sum::<u64>(), 1);
    }

    #[test]
    fn originator_reseed_sources_from_farther_away_than_replica() {
        let t = topology(300, 4, 41);
        let lone = sole_region_member(&t, 16 - 8);
        let make = |src: RepairSource| {
            let mut sim = DownloadSim::new(t.clone(), CachePolicy::None);
            sim.enable_durability(8);
            sim.topology_mut().remove_node(lone).unwrap();
            sim.on_node_leave(lone);
            assert!(sim.note_departure(lone, 1));
            sim.advance_step();
            let mut hops = usize::MAX;
            assert_eq!(sim.run_repairs(src, |d| hops = d.hops.len()), 1);
            hops
        };
        let replica = make(RepairSource::Replica);
        let reseed = make(RepairSource::Originator);
        assert!(
            reseed >= replica,
            "re-seeding from the originator ({reseed} hops) must not be \
             shorter than the surviving replica ({replica} hops)"
        );
    }

    #[test]
    fn unrepaired_region_age_raises_only_the_wait_maximum() {
        let t = topology(300, 4, 41);
        let lone = sole_region_member(&t, 16 - 8);
        let mut sim = DownloadSim::new(t, CachePolicy::None);
        sim.enable_durability(8);
        sim.topology_mut().remove_node(lone).unwrap();
        assert!(sim.note_departure(lone, 1));
        sim.finalize_durability(51);
        assert_eq!(sim.stats().repair_wait_max(), 50);
        assert_eq!(sim.stats().repair_wait_total(), 0);
        assert_eq!(sim.stats().mean_time_to_repair(), 0.0);
    }

    #[test]
    fn retry_recovers_a_capacity_blocked_request() {
        let t = topology(200, 4, 23);
        let chunk = t.space().address(0x0F0F).unwrap();
        let originator = t
            .node_ids()
            .max_by_key(|n| t.space().distance(t.address(*n), chunk))
            .unwrap();
        let mut sim = DownloadSim::new(t, CachePolicy::None);
        sim.set_capacities(vec![1; 200]);
        sim.set_retry_policy(2, 1);

        // Two identical requests in one step: the second saturates and
        // queues a retry instead of vanishing.
        assert_eq!(sim.download_file(originator, &[chunk]).delivered, 1);
        assert_eq!(sim.download_file(originator, &[chunk]).stuck, 1);
        assert_eq!(sim.pending_retries(), 1);

        // Not due yet this step; due (and deliverable) next step.
        sim.drain_retries(|_| panic!("retry must wait for its backoff"));
        assert_eq!(sim.pending_retries(), 1);
        sim.advance_step();
        let mut recovered = None;
        sim.drain_retries(|d| recovered = Some(d.delivered()));
        assert_eq!(recovered, Some(true));
        assert_eq!(sim.pending_retries(), 0);
        assert_eq!(sim.stats().retried(), 1);
        assert_eq!(sim.stats().recovered(), 1);
        assert_eq!(sim.stats().abandoned(), 0);
        // The retry re-entered the books as a fresh request, keeping
        // delivered + stuck == requests.
        assert_eq!(sim.stats().requests_issued().iter().sum::<u64>(), 3);
        assert_eq!(sim.stats().stuck_requests(), 1);
    }

    #[test]
    fn exhausted_retries_are_abandoned() {
        let t = topology(300, 4, 41);
        let lone = sole_region_member(&t, 16 - 8);
        let chunk = t.address(lone);
        let mut sim = DownloadSim::new(t, CachePolicy::None);
        sim.enable_durability(8);
        sim.set_retry_policy(1, 1);
        sim.topology_mut().remove_node(lone).unwrap();
        assert!(sim.note_departure(lone, 1));

        // The first attempt faults on the lost region and queues a retry;
        // with no repair policy running, the single retry faults too and
        // the request is abandoned for good.
        assert_eq!(sim.download_file(NodeId(0), &[chunk]).stuck, 1);
        assert_eq!(sim.pending_retries(), 1);
        sim.advance_step();
        sim.drain_retries(|_| panic!("the region is still lost"));
        assert_eq!(sim.pending_retries(), 0);
        assert_eq!(sim.stats().retried(), 1);
        assert_eq!(sim.stats().recovered(), 0);
        assert_eq!(sim.stats().abandoned(), 1);
        assert_eq!(sim.stats().unreachable_requests(), 2);
    }

    #[test]
    #[should_panic(expected = "neighborhood_bits")]
    fn full_width_neighborhood_is_rejected() {
        let t = topology(100, 4, 13);
        let mut sim = DownloadSim::new(t, CachePolicy::None);
        sim.enable_durability(16);
    }
}
