//! Per-node chunk caches (§V extension: "adding content popularity and
//! caching policies can also have an impact on time-based amortization due
//! to the reduced number of forwarded requests").

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use fairswap_kademlia::OverlayAddress;

/// Cache eviction policy for chunks passing through a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CachePolicy {
    /// No caching — the paper's baseline configuration.
    None,
    /// Least-recently-used eviction with the given capacity in chunks.
    Lru {
        /// Maximum cached chunks per node.
        capacity: usize,
    },
    /// Least-frequently-used eviction with the given capacity in chunks.
    Lfu {
        /// Maximum cached chunks per node.
        capacity: usize,
    },
    /// LRU eviction plus a time-to-live: entries older than `ttl` cache
    /// clock ticks (one tick per lookup or insert at that node) are
    /// treated as misses and dropped. The churn-aware variant: under
    /// dynamic membership a cached copy's neighborhood drifts and whole
    /// caches vanish with their departing nodes, so long-lived entries are
    /// disproportionately stale — a TTL bounds how long the cache keeps
    /// betting on old popularity.
    Ttl {
        /// Maximum cached chunks per node.
        capacity: usize,
        /// Entry lifetime in cache clock ticks.
        ttl: u64,
    },
}

impl CachePolicy {
    /// Capacity in chunks (zero for [`CachePolicy::None`]).
    pub fn capacity(&self) -> usize {
        match *self {
            CachePolicy::None => 0,
            CachePolicy::Lru { capacity }
            | CachePolicy::Lfu { capacity }
            | CachePolicy::Ttl { capacity, .. } => capacity,
        }
    }

    /// A short stable identifier, used in CSV output.
    pub fn id(&self) -> &'static str {
        match self {
            CachePolicy::None => "none",
            CachePolicy::Lru { .. } => "lru",
            CachePolicy::Lfu { .. } => "lfu",
            CachePolicy::Ttl { .. } => "ttl",
        }
    }
}

/// One node's chunk cache.
///
/// Entries carry a recency stamp and a frequency counter; the policy decides
/// which is used for eviction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeCache {
    policy: CachePolicy,
    /// chunk address -> (last-touch stamp, hit count)
    entries: HashMap<u64, (u64, u64)>,
    clock: u64,
    lookups: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    ttl_expiries: u64,
}

impl NodeCache {
    /// Creates an empty cache with the given policy.
    pub fn new(policy: CachePolicy) -> Self {
        Self {
            policy,
            entries: HashMap::new(),
            clock: 0,
            lookups: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            ttl_expiries: 0,
        }
    }

    /// The cache policy.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// Number of cached chunks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime lookups that consulted the cache (always `hits + misses`;
    /// [`CachePolicy::None`] short-circuits before counting).
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lifetime cache hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime cache misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime capacity evictions (victims removed on insert).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Lifetime TTL expiries (entries dropped because a lookup found them
    /// past their lifetime; each also counts as a miss).
    pub fn ttl_expiries(&self) -> u64 {
        self.ttl_expiries
    }

    /// Looks up a chunk, updating hit statistics and recency/frequency on a
    /// hit. Under [`CachePolicy::Ttl`], an entry older than its lifetime
    /// counts as a miss and is dropped on the spot.
    pub fn lookup(&mut self, chunk: OverlayAddress) -> bool {
        if matches!(self.policy, CachePolicy::None) {
            return false;
        }
        self.clock += 1;
        self.lookups += 1;
        match self.entries.get_mut(&chunk.raw()) {
            Some((stamp, count)) => {
                if let CachePolicy::Ttl { ttl, .. } = self.policy {
                    if self.clock - *stamp > ttl {
                        self.entries.remove(&chunk.raw());
                        self.misses += 1;
                        self.ttl_expiries += 1;
                        return false;
                    }
                }
                *stamp = self.clock;
                *count += 1;
                self.hits += 1;
                true
            }
            None => {
                self.misses += 1;
                false
            }
        }
    }

    /// Whether a chunk is cached, without touching statistics.
    pub fn contains(&self, chunk: OverlayAddress) -> bool {
        self.entries.contains_key(&chunk.raw())
    }

    /// Drops every cached chunk while keeping lifetime hit/miss counters
    /// (used when the owning node leaves the overlay: its hot copies are
    /// gone, but its traffic history is a fact).
    pub fn clear_entries(&mut self) {
        self.entries.clear();
    }

    /// Inserts a chunk, evicting per policy if at capacity.
    pub fn insert(&mut self, chunk: OverlayAddress) {
        let capacity = self.policy.capacity();
        if capacity == 0 {
            return;
        }
        self.clock += 1;
        if self.entries.contains_key(&chunk.raw()) {
            // Refresh recency.
            let entry = self.entries.get_mut(&chunk.raw()).expect("checked");
            entry.0 = self.clock;
            return;
        }
        if self.entries.len() >= capacity {
            // Touch stamps are unique (every mutation ticks the clock), so
            // each min_by_key below is unambiguous and the eviction order
            // is deterministic despite HashMap iteration order.
            let victim = match self.policy {
                CachePolicy::Lru { .. } => self
                    .entries
                    .iter()
                    .min_by_key(|(_, (stamp, _))| *stamp)
                    .map(|(&addr, _)| addr),
                CachePolicy::Lfu { .. } => self
                    .entries
                    .iter()
                    .min_by_key(|(_, (stamp, count))| (*count, *stamp))
                    .map(|(&addr, _)| addr),
                // TTL evicts like LRU; the oldest stamp is also the entry
                // closest to (or past) expiry.
                CachePolicy::Ttl { .. } => self
                    .entries
                    .iter()
                    .min_by_key(|(_, (stamp, _))| *stamp)
                    .map(|(&addr, _)| addr),
                CachePolicy::None => None,
            };
            if let Some(victim) = victim {
                self.entries.remove(&victim);
                self.evictions += 1;
            }
        }
        self.entries.insert(chunk.raw(), (self.clock, 0));
    }

    /// Accumulates this cache's lifetime counters into `totals`.
    pub fn add_totals(&self, totals: &mut CacheTotals) {
        totals.lookups += self.lookups;
        totals.hits += self.hits;
        totals.misses += self.misses;
        totals.evictions += self.evictions;
        totals.ttl_expiries += self.ttl_expiries;
    }
}

/// Network-wide cache counters, summed over every node's [`NodeCache`].
///
/// `lookups == hits + misses` by construction; the observability layer's
/// conservation tests pin that identity end-to-end.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheTotals {
    /// Lookups that consulted a cache.
    pub lookups: u64,
    /// Lookups served from cache.
    pub hits: u64,
    /// Lookups that missed (including TTL expiries).
    pub misses: u64,
    /// Entries evicted to make room on insert.
    pub evictions: u64,
    /// Entries dropped because a lookup found them expired.
    pub ttl_expiries: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairswap_kademlia::AddressSpace;

    fn addr(raw: u64) -> OverlayAddress {
        AddressSpace::new(16).unwrap().address(raw).unwrap()
    }

    #[test]
    fn none_policy_never_caches() {
        let mut c = NodeCache::new(CachePolicy::None);
        c.insert(addr(1));
        assert!(c.is_empty());
        assert!(!c.lookup(addr(1)));
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
        assert_eq!(c.policy().capacity(), 0);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = NodeCache::new(CachePolicy::Lru { capacity: 2 });
        c.insert(addr(1));
        c.insert(addr(2));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.lookup(addr(1)));
        c.insert(addr(3));
        assert!(c.contains(addr(1)));
        assert!(!c.contains(addr(2)));
        assert!(c.contains(addr(3)));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let mut c = NodeCache::new(CachePolicy::Lfu { capacity: 2 });
        c.insert(addr(1));
        c.insert(addr(2));
        // Hit 1 twice; 2 never.
        c.lookup(addr(1));
        c.lookup(addr(1));
        c.insert(addr(3));
        assert!(c.contains(addr(1)));
        assert!(!c.contains(addr(2)));
    }

    #[test]
    fn hit_miss_accounting() {
        let mut c = NodeCache::new(CachePolicy::Lru { capacity: 4 });
        assert!(!c.lookup(addr(9)));
        c.insert(addr(9));
        assert!(c.lookup(addr(9)));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.lookups(), 2);
        assert_eq!(c.lookups(), c.hits() + c.misses());
    }

    #[test]
    fn eviction_and_expiry_counters() {
        let mut c = NodeCache::new(CachePolicy::Ttl {
            capacity: 2,
            ttl: 2,
        });
        c.insert(addr(1));
        c.insert(addr(2));
        // Capacity eviction on the third insert.
        c.insert(addr(3));
        assert_eq!(c.evictions(), 1);
        // Age the survivor past its TTL, then look it up.
        c.lookup(addr(9));
        c.lookup(addr(9));
        c.lookup(addr(9));
        assert!(!c.lookup(addr(3)));
        assert_eq!(c.ttl_expiries(), 1);
        assert_eq!(c.lookups(), c.hits() + c.misses());

        let mut totals = CacheTotals::default();
        c.add_totals(&mut totals);
        assert_eq!(totals.lookups, c.lookups());
        assert_eq!(totals.evictions, 1);
        assert_eq!(totals.ttl_expiries, 1);
        assert_eq!(totals.lookups, totals.hits + totals.misses);
    }

    #[test]
    fn ttl_entries_expire_into_misses() {
        let mut c = NodeCache::new(CachePolicy::Ttl {
            capacity: 4,
            ttl: 3,
        });
        assert_eq!(c.policy().id(), "ttl");
        assert_eq!(c.policy().capacity(), 4);
        c.insert(addr(1));
        // Within the lifetime: a hit, which also refreshes the stamp.
        assert!(c.lookup(addr(1)));
        // Age the entry past its TTL with unrelated traffic.
        for _ in 0..4 {
            c.lookup(addr(9));
        }
        assert!(!c.lookup(addr(1)), "expired entry must miss");
        assert!(!c.contains(addr(1)), "expired entry must be dropped");
        assert_eq!(c.hits(), 1);
    }

    #[test]
    fn ttl_evicts_least_recent_at_capacity() {
        let mut c = NodeCache::new(CachePolicy::Ttl {
            capacity: 2,
            ttl: 1_000,
        });
        c.insert(addr(1));
        c.insert(addr(2));
        assert!(c.lookup(addr(1)));
        c.insert(addr(3));
        assert!(c.contains(addr(1)));
        assert!(!c.contains(addr(2)));
        assert!(c.contains(addr(3)));
    }

    #[test]
    fn policy_ids_are_stable() {
        assert_eq!(CachePolicy::None.id(), "none");
        assert_eq!(CachePolicy::Lru { capacity: 1 }.id(), "lru");
        assert_eq!(CachePolicy::Lfu { capacity: 1 }.id(), "lfu");
    }

    #[test]
    fn reinserting_refreshes_instead_of_duplicating() {
        let mut c = NodeCache::new(CachePolicy::Lru { capacity: 2 });
        c.insert(addr(1));
        c.insert(addr(1));
        assert_eq!(c.len(), 1);
    }
}
