//! The p2p storage-network model (paper §III-A, §IV-B).
//!
//! Swarm stores all content as 4 KB chunks addressed in the same space as
//! nodes; each chunk is held by the node whose address is XOR-closest to the
//! chunk address (the paper simplifies to *exactly one* storer per chunk,
//! which this crate follows). Downloading a file means routing one request
//! per chunk through the forwarding-Kademlia overlay and counting who
//! forwarded, who served as first hop, and who served from storage or cache.
//!
//! ```
//! use fairswap_kademlia::{AddressSpace, TopologyBuilder, NodeId};
//! use fairswap_storage::{DownloadSim, CachePolicy};
//!
//! let topology = TopologyBuilder::new(AddressSpace::new(16)?)
//!     .nodes(100)
//!     .bucket_size(4)
//!     .seed(7)
//!     .build()?;
//! let chunks = vec![topology.space().address(0x0123)?, topology.space().address(0xFEDC)?];
//! let mut sim = DownloadSim::new(topology.clone(), CachePolicy::None);
//! let report = sim.download_file(NodeId(0), &chunks);
//! assert_eq!(report.chunks, 2);
//! # Ok::<(), fairswap_kademlia::KademliaError>(())
//! ```

mod cache;
mod chunk;
mod download;
mod route;
mod traffic;
mod upload;

pub use cache::{CachePolicy, CacheTotals, NodeCache};
pub use chunk::{FileSpec, CHUNK_SIZE_BYTES};
pub use download::{ChunkDelivery, DownloadSim, FileReport, RepairSource};
pub use route::RoutePolicy;
pub use traffic::TrafficStats;
pub use upload::{UploadReport, UploadSim};
