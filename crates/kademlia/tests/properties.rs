//! Property-based tests for the overlay substrate.

use fairswap_kademlia::{
    AddressSpace, Distance, NodeId, Proximity, RouteOutcome, Router, TopologyBuilder,
};
use proptest::prelude::*;

fn arb_bits() -> impl Strategy<Value = u32> {
    1u32..=64
}

proptest! {
    /// XOR distance is symmetric and zero exactly on the diagonal.
    #[test]
    fn distance_symmetric_and_identity(bits in arb_bits(), a in any::<u64>(), b in any::<u64>()) {
        let space = AddressSpace::new(bits).unwrap();
        let a = space.address_truncated(a);
        let b = space.address_truncated(b);
        prop_assert_eq!(space.distance(a, b), space.distance(b, a));
        prop_assert_eq!(space.distance(a, b).is_zero(), a == b);
    }

    /// The XOR metric satisfies the triangle *equality* relaxation:
    /// d(a,c) <= d(a,b) XOR-combined — concretely d(a,c) = d(a,b) ^ d(b,c)
    /// numerically, which implies d(a,c) <= d(a,b) + d(b,c).
    #[test]
    fn distance_triangle(bits in arb_bits(), a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let space = AddressSpace::new(bits).unwrap();
        let a = space.address_truncated(a);
        let b = space.address_truncated(b);
        let c = space.address_truncated(c);
        let ab = space.distance(a, b).raw() as u128;
        let bc = space.distance(b, c).raw() as u128;
        let ac = space.distance(a, c).raw() as u128;
        prop_assert_eq!(ac, ab ^ bc);
        prop_assert!(ac <= ab + bc);
    }

    /// Proximity is symmetric, bounded by the bit width, and saturates only
    /// on equal addresses.
    #[test]
    fn proximity_laws(bits in arb_bits(), a in any::<u64>(), b in any::<u64>()) {
        let space = AddressSpace::new(bits).unwrap();
        let a = space.address_truncated(a);
        let b = space.address_truncated(b);
        let p = space.proximity(a, b);
        prop_assert_eq!(p, space.proximity(b, a));
        prop_assert!(p.order() <= bits);
        prop_assert_eq!(p.order() == bits, a == b);
    }

    /// Proximity and distance agree: higher proximity implies strictly
    /// smaller distance when comparing two candidates against one target.
    #[test]
    fn proximity_refines_distance(
        bits in 2u32..=64,
        t in any::<u64>(),
        x in any::<u64>(),
        y in any::<u64>(),
    ) {
        let space = AddressSpace::new(bits).unwrap();
        let t = space.address_truncated(t);
        let x = space.address_truncated(x);
        let y = space.address_truncated(y);
        let (px, py) = (space.proximity(t, x), space.proximity(t, y));
        let (dx, dy) = (space.distance(t, x), space.distance(t, y));
        if px > py {
            prop_assert!(dx < dy, "prox {px} > {py} but dist {dx} >= {dy}");
        }
    }

    /// Distance to the common prefix: d(a,b) < 2^(bits - proximity).
    #[test]
    fn distance_bounded_by_proximity(bits in arb_bits(), a in any::<u64>(), b in any::<u64>()) {
        let space = AddressSpace::new(bits).unwrap();
        let a = space.address_truncated(a);
        let b = space.address_truncated(b);
        let p = space.proximity(a, b).order();
        if a != b {
            let bound = 1u128 << (bits - p);
            prop_assert!((space.distance(a, b).raw() as u128) < bound);
            // And at least 2^(bits - p - 1): the first differing bit is set.
            prop_assert!((space.distance(a, b).raw() as u128) >= bound / 2);
        }
    }

    /// Topologies always validate and the closest-node trie agrees with a
    /// linear scan for arbitrary targets.
    #[test]
    fn topology_valid_and_trie_correct(
        nodes in 2usize..80,
        k in 1usize..8,
        seed in any::<u64>(),
        target in any::<u64>(),
    ) {
        let space = AddressSpace::new(12).unwrap();
        let t = TopologyBuilder::new(space)
            .nodes(nodes)
            .bucket_size(k)
            .seed(seed)
            .build()
            .unwrap();
        prop_assert!(t.validate().is_ok());
        let target = space.address_truncated(target);
        let by_trie = t.closest_node(target);
        let best = t
            .node_ids()
            .min_by_key(|n| space.distance(t.address(*n), target))
            .unwrap();
        prop_assert_eq!(by_trie, best);
    }

    /// Greedy routes terminate, strictly decrease distance, and a delivered
    /// route ends at the storer.
    #[test]
    fn routes_progress_and_terminate(
        nodes in 2usize..120,
        k in 1usize..6,
        seed in any::<u64>(),
        origin_pick in any::<usize>(),
        target in any::<u64>(),
    ) {
        let space = AddressSpace::new(12).unwrap();
        let t = TopologyBuilder::new(space)
            .nodes(nodes)
            .bucket_size(k)
            .seed(seed)
            .build()
            .unwrap();
        let router = Router::new(&t);
        let origin = NodeId(origin_pick % t.len());
        let target = space.address_truncated(target);
        let route = router.route(origin, target);

        prop_assert!(route.hop_count() <= t.len());
        let mut last = space.distance(t.address(origin), target);
        for &hop in route.hops() {
            let d = space.distance(t.address(hop), target);
            prop_assert!(d < last);
            last = d;
        }
        match route.outcome() {
            RouteOutcome::Delivered => {
                prop_assert_eq!(route.terminal(), Some(t.closest_node(target)));
            }
            RouteOutcome::AlreadyAtStorer => {
                prop_assert_eq!(t.closest_node(target), origin);
                prop_assert_eq!(route.hop_count(), 0);
            }
            RouteOutcome::Stuck => {
                prop_assert!(route.terminal() != Some(t.closest_node(target)));
            }
        }
    }

    /// The arena-backed bucket-ordered next-hop search and the partial
    /// `closest_peers` selection match brute-force linear scans on every
    /// live table after an arbitrary interleaving of node departures and
    /// rejoins, and the structural invariants survive throughout.
    #[test]
    fn arena_tables_match_linear_reference_under_churn(
        nodes in 8usize..40,
        k in 1usize..6,
        seed in any::<u64>(),
        ops in prop::collection::vec((any::<u16>(), any::<bool>()), 0..25),
        target in any::<u64>(),
    ) {
        let space = AddressSpace::new(12).unwrap();
        let mut t = TopologyBuilder::new(space)
            .nodes(nodes)
            .bucket_size(k)
            .seed(seed)
            .build()
            .unwrap();
        for (pick, join) in ops {
            let node = NodeId(pick as usize % nodes);
            if join {
                let _ = t.add_node(node);
            } else {
                let _ = t.remove_node(node);
            }
        }
        prop_assert!(t.validate().is_ok());
        let target = space.address_truncated(target);
        for owner in t.live_ids() {
            let table = t.table(owner);
            // next_hop == the strictly-closer minimum over a full scan
            // (XOR distances to distinct addresses are unique, so the
            // reference answer is unambiguous).
            let own = space.distance(t.address(owner), target);
            let reference = table
                .peers()
                .min_by_key(|(_, addr)| space.distance(*addr, target))
                .filter(|(_, addr)| space.distance(*addr, target) < own);
            prop_assert_eq!(table.next_hop(target), reference, "owner {}", owner);
            prop_assert_eq!(
                t.next_hop(owner, target),
                reference.map(|(id, _)| id),
                "owner {}",
                owner
            );
            // closest_peers == the sorted prefix of a full scan.
            let mut all: Vec<_> = table.peers().collect();
            all.sort_by_key(|(_, addr)| space.distance(*addr, target));
            for n in [0usize, 1, 2, k, nodes] {
                let mut expected = all.clone();
                expected.truncate(n);
                prop_assert_eq!(table.closest_peers(target, n), expected, "owner {}", owner);
            }
        }
        // Offline tables must be empty and unreachable from live ones.
        for node in t.node_ids() {
            if !t.is_live(node) {
                prop_assert_eq!(t.table(node).connection_count(), 0);
                prop_assert!(t.table(node).next_hop(target).is_none());
            }
        }
    }

    /// A route never visits the same node twice (follows from strict
    /// distance decrease, checked directly for defence in depth).
    #[test]
    fn routes_are_simple_paths(
        nodes in 2usize..100,
        seed in any::<u64>(),
        target in any::<u64>(),
    ) {
        let space = AddressSpace::new(10).unwrap();
        let t = TopologyBuilder::new(space)
            .nodes(nodes)
            .bucket_size(4)
            .seed(seed)
            .build()
            .unwrap();
        let router = Router::new(&t);
        let target = space.address_truncated(target);
        let route = router.route(NodeId(0), target);
        let mut seen = std::collections::HashSet::new();
        seen.insert(NodeId(0));
        for &hop in route.hops() {
            prop_assert!(seen.insert(hop), "revisited {hop}");
        }
    }
}

#[test]
fn distance_and_proximity_types_are_ordered() {
    assert!(Distance(1) < Distance(2));
    assert!(Proximity(3) > Proximity(1));
}
