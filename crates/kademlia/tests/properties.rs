//! Property-based tests for the overlay substrate.

use fairswap_kademlia::{
    AddressSpace, Distance, NodeId, Proximity, RouteOutcome, Router, TopologyBuilder,
};
use proptest::prelude::*;

fn arb_bits() -> impl Strategy<Value = u32> {
    1u32..=64
}

proptest! {
    /// XOR distance is symmetric and zero exactly on the diagonal.
    #[test]
    fn distance_symmetric_and_identity(bits in arb_bits(), a in any::<u64>(), b in any::<u64>()) {
        let space = AddressSpace::new(bits).unwrap();
        let a = space.address_truncated(a);
        let b = space.address_truncated(b);
        prop_assert_eq!(space.distance(a, b), space.distance(b, a));
        prop_assert_eq!(space.distance(a, b).is_zero(), a == b);
    }

    /// The XOR metric satisfies the triangle *equality* relaxation:
    /// d(a,c) <= d(a,b) XOR-combined — concretely d(a,c) = d(a,b) ^ d(b,c)
    /// numerically, which implies d(a,c) <= d(a,b) + d(b,c).
    #[test]
    fn distance_triangle(bits in arb_bits(), a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let space = AddressSpace::new(bits).unwrap();
        let a = space.address_truncated(a);
        let b = space.address_truncated(b);
        let c = space.address_truncated(c);
        let ab = space.distance(a, b).raw() as u128;
        let bc = space.distance(b, c).raw() as u128;
        let ac = space.distance(a, c).raw() as u128;
        prop_assert_eq!(ac, ab ^ bc);
        prop_assert!(ac <= ab + bc);
    }

    /// Proximity is symmetric, bounded by the bit width, and saturates only
    /// on equal addresses.
    #[test]
    fn proximity_laws(bits in arb_bits(), a in any::<u64>(), b in any::<u64>()) {
        let space = AddressSpace::new(bits).unwrap();
        let a = space.address_truncated(a);
        let b = space.address_truncated(b);
        let p = space.proximity(a, b);
        prop_assert_eq!(p, space.proximity(b, a));
        prop_assert!(p.order() <= bits);
        prop_assert_eq!(p.order() == bits, a == b);
    }

    /// Proximity and distance agree: higher proximity implies strictly
    /// smaller distance when comparing two candidates against one target.
    #[test]
    fn proximity_refines_distance(
        bits in 2u32..=64,
        t in any::<u64>(),
        x in any::<u64>(),
        y in any::<u64>(),
    ) {
        let space = AddressSpace::new(bits).unwrap();
        let t = space.address_truncated(t);
        let x = space.address_truncated(x);
        let y = space.address_truncated(y);
        let (px, py) = (space.proximity(t, x), space.proximity(t, y));
        let (dx, dy) = (space.distance(t, x), space.distance(t, y));
        if px > py {
            prop_assert!(dx < dy, "prox {px} > {py} but dist {dx} >= {dy}");
        }
    }

    /// Distance to the common prefix: d(a,b) < 2^(bits - proximity).
    #[test]
    fn distance_bounded_by_proximity(bits in arb_bits(), a in any::<u64>(), b in any::<u64>()) {
        let space = AddressSpace::new(bits).unwrap();
        let a = space.address_truncated(a);
        let b = space.address_truncated(b);
        let p = space.proximity(a, b).order();
        if a != b {
            let bound = 1u128 << (bits - p);
            prop_assert!((space.distance(a, b).raw() as u128) < bound);
            // And at least 2^(bits - p - 1): the first differing bit is set.
            prop_assert!((space.distance(a, b).raw() as u128) >= bound / 2);
        }
    }

    /// Topologies always validate and the closest-node trie agrees with a
    /// linear scan for arbitrary targets.
    #[test]
    fn topology_valid_and_trie_correct(
        nodes in 2usize..80,
        k in 1usize..8,
        seed in any::<u64>(),
        target in any::<u64>(),
    ) {
        let space = AddressSpace::new(12).unwrap();
        let t = TopologyBuilder::new(space)
            .nodes(nodes)
            .bucket_size(k)
            .seed(seed)
            .build()
            .unwrap();
        prop_assert!(t.validate().is_ok());
        let target = space.address_truncated(target);
        let by_trie = t.closest_node(target);
        let best = t
            .node_ids()
            .min_by_key(|n| space.distance(t.address(*n), target))
            .unwrap();
        prop_assert_eq!(by_trie, best);
    }

    /// Greedy routes terminate, strictly decrease distance, and a delivered
    /// route ends at the storer.
    #[test]
    fn routes_progress_and_terminate(
        nodes in 2usize..120,
        k in 1usize..6,
        seed in any::<u64>(),
        origin_pick in any::<usize>(),
        target in any::<u64>(),
    ) {
        let space = AddressSpace::new(12).unwrap();
        let t = TopologyBuilder::new(space)
            .nodes(nodes)
            .bucket_size(k)
            .seed(seed)
            .build()
            .unwrap();
        let router = Router::new(&t);
        let origin = NodeId(origin_pick % t.len());
        let target = space.address_truncated(target);
        let route = router.route(origin, target);

        prop_assert!(route.hop_count() <= t.len());
        let mut last = space.distance(t.address(origin), target);
        for &hop in route.hops() {
            let d = space.distance(t.address(hop), target);
            prop_assert!(d < last);
            last = d;
        }
        match route.outcome() {
            RouteOutcome::Delivered => {
                prop_assert_eq!(route.terminal(), Some(t.closest_node(target)));
            }
            RouteOutcome::AlreadyAtStorer => {
                prop_assert_eq!(t.closest_node(target), origin);
                prop_assert_eq!(route.hop_count(), 0);
            }
            RouteOutcome::Stuck => {
                prop_assert!(route.terminal() != Some(t.closest_node(target)));
            }
        }
    }

    /// A route never visits the same node twice (follows from strict
    /// distance decrease, checked directly for defence in depth).
    #[test]
    fn routes_are_simple_paths(
        nodes in 2usize..100,
        seed in any::<u64>(),
        target in any::<u64>(),
    ) {
        let space = AddressSpace::new(10).unwrap();
        let t = TopologyBuilder::new(space)
            .nodes(nodes)
            .bucket_size(4)
            .seed(seed)
            .build()
            .unwrap();
        let router = Router::new(&t);
        let target = space.address_truncated(target);
        let route = router.route(NodeId(0), target);
        let mut seen = std::collections::HashSet::new();
        seen.insert(NodeId(0));
        for &hop in route.hops() {
            prop_assert!(seen.insert(hop), "revisited {hop}");
        }
    }
}

#[test]
fn distance_and_proximity_types_are_ordered() {
    assert!(Distance(1) < Distance(2));
    assert!(Proximity(3) > Proximity(1));
}
