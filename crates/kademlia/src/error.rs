//! Error type for overlay construction and routing.

use std::error::Error;
use std::fmt;

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KademliaError {
    /// Address-space bit-width outside `1..=64`.
    InvalidBits {
        /// The rejected width.
        bits: u32,
    },
    /// Raw address value does not fit in the address space.
    AddressOutOfRange {
        /// The rejected raw value.
        raw: u64,
        /// Bit-width of the space.
        bits: u32,
    },
    /// Requested more distinct node addresses than the space holds.
    SpaceExhausted {
        /// Number of nodes requested.
        requested: usize,
        /// Capacity of the address space.
        capacity: u128,
    },
    /// A topology needs at least two nodes to route anything.
    TooFewNodes {
        /// Number of nodes requested.
        requested: usize,
    },
    /// Bucket size `k` must be at least 1.
    ZeroBucketSize,
    /// Duplicate explicit node address.
    DuplicateAddress {
        /// The raw value that appeared twice.
        raw: u64,
    },
    /// A node id that is not part of the topology.
    UnknownNode {
        /// The offending node index.
        index: usize,
    },
    /// Tried to add a node that is already live.
    NodeAlreadyLive {
        /// The offending node index.
        index: usize,
    },
    /// Tried to remove a node that is already offline.
    NodeNotLive {
        /// The offending node index.
        index: usize,
    },
    /// A removal would leave fewer than two live nodes, making routing
    /// meaningless.
    TooFewLiveNodes {
        /// Live nodes before the rejected removal.
        live: usize,
    },
}

impl fmt::Display for KademliaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidBits { bits } => {
                write!(f, "address space width must be in 1..=64, got {bits}")
            }
            Self::AddressOutOfRange { raw, bits } => {
                write!(f, "address {raw:#x} does not fit in a {bits}-bit space")
            }
            Self::SpaceExhausted {
                requested,
                capacity,
            } => write!(
                f,
                "cannot place {requested} distinct nodes in a space of {capacity} addresses"
            ),
            Self::TooFewNodes { requested } => {
                write!(f, "a topology needs at least 2 nodes, got {requested}")
            }
            Self::ZeroBucketSize => write!(f, "bucket size k must be at least 1"),
            Self::DuplicateAddress { raw } => {
                write!(f, "duplicate node address {raw:#x}")
            }
            Self::UnknownNode { index } => write!(f, "unknown node id {index}"),
            Self::NodeAlreadyLive { index } => {
                write!(f, "node {index} is already part of the live overlay")
            }
            Self::NodeNotLive { index } => write!(f, "node {index} is already offline"),
            Self::TooFewLiveNodes { live } => {
                write!(f, "removal would leave fewer than 2 of {live} live nodes")
            }
        }
    }
}

impl Error for KademliaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            KademliaError::InvalidBits { bits: 0 },
            KademliaError::AddressOutOfRange {
                raw: 70_000,
                bits: 16,
            },
            KademliaError::SpaceExhausted {
                requested: 10,
                capacity: 4,
            },
            KademliaError::TooFewNodes { requested: 1 },
            KademliaError::ZeroBucketSize,
            KademliaError::DuplicateAddress { raw: 3 },
            KademliaError::UnknownNode { index: 9 },
            KademliaError::NodeAlreadyLive { index: 1 },
            KademliaError::NodeNotLive { index: 1 },
            KademliaError::TooFewLiveNodes { live: 2 },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
        }
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<KademliaError>();
    }
}
