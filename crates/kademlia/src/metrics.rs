//! Structural metrics over topologies and routes.

use serde::{Deserialize, Serialize};

use crate::topology::Topology;

/// Histogram of route hop counts.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopHistogram {
    counts: Vec<u64>,
    total_routes: u64,
    total_hops: u64,
}

impl HopHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a route of `hops` hops.
    pub fn record(&mut self, hops: usize) {
        if self.counts.len() <= hops {
            self.counts.resize(hops + 1, 0);
        }
        self.counts[hops] += 1;
        self.total_routes += 1;
        self.total_hops += hops as u64;
    }

    /// Number of routes with exactly `hops` hops.
    pub fn count(&self, hops: usize) -> u64 {
        self.counts.get(hops).copied().unwrap_or(0)
    }

    /// Total recorded routes.
    pub fn total_routes(&self) -> u64 {
        self.total_routes
    }

    /// Mean hop count, or `None` if nothing was recorded.
    pub fn mean(&self) -> Option<f64> {
        if self.total_routes == 0 {
            None
        } else {
            Some(self.total_hops as f64 / self.total_routes as f64)
        }
    }

    /// Largest observed hop count.
    pub fn max(&self) -> usize {
        self.counts.len().saturating_sub(1)
    }

    /// `(hops, count)` pairs for all observed hop counts.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts.iter().copied().enumerate()
    }
}

/// Bucket-occupancy summary of a whole topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketOccupancy {
    /// Mean number of peers in bucket `i`, averaged over nodes.
    pub mean_per_bucket: Vec<f64>,
    /// Fraction of nodes whose bucket `i` is full.
    pub full_fraction: Vec<f64>,
}

/// Aggregate structural metrics for a topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyMetrics {
    /// Number of nodes.
    pub nodes: usize,
    /// Total open connections (sum of table entries).
    pub total_connections: usize,
    /// Mean connections per node.
    pub mean_connections: f64,
    /// Mean neighborhood depth.
    pub mean_neighborhood_depth: f64,
    /// Per-bucket occupancy stats.
    pub occupancy: BucketOccupancy,
}

impl TopologyMetrics {
    /// Computes metrics for `topology`.
    pub fn compute(topology: &Topology) -> Self {
        let n = topology.len();
        let bits = topology.space().bits() as usize;
        let mut mean_per_bucket = vec![0.0; bits];
        let mut full_fraction = vec![0.0; bits];
        let mut depth_sum = 0.0;
        for table in topology.tables() {
            depth_sum += f64::from(table.neighborhood_depth());
            for bucket in table.buckets() {
                let i = bucket.index() as usize;
                mean_per_bucket[i] += bucket.len() as f64;
                if bucket.is_full() {
                    full_fraction[i] += 1.0;
                }
            }
        }
        for v in &mut mean_per_bucket {
            *v /= n as f64;
        }
        for v in &mut full_fraction {
            *v /= n as f64;
        }
        let total_connections = topology.total_connections();
        Self {
            nodes: n,
            total_connections,
            mean_connections: total_connections as f64 / n as f64,
            mean_neighborhood_depth: depth_sum / n as f64,
            occupancy: BucketOccupancy {
                mean_per_bucket,
                full_fraction,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::AddressSpace;
    use crate::topology::TopologyBuilder;

    #[test]
    fn hop_histogram_counts_and_mean() {
        let mut h = HopHistogram::new();
        assert_eq!(h.mean(), None);
        h.record(1);
        h.record(3);
        h.record(3);
        assert_eq!(h.count(3), 2);
        assert_eq!(h.count(0), 0);
        assert_eq!(h.total_routes(), 3);
        assert!((h.mean().unwrap() - 7.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.max(), 3);
        let collected: Vec<_> = h.iter().collect();
        assert_eq!(collected[1], (1, 1));
    }

    #[test]
    fn topology_metrics_shape() {
        let t = TopologyBuilder::new(AddressSpace::new(16).unwrap())
            .nodes(200)
            .bucket_size(4)
            .seed(2)
            .build()
            .unwrap();
        let m = TopologyMetrics::compute(&t);
        assert_eq!(m.nodes, 200);
        assert_eq!(m.occupancy.mean_per_bucket.len(), 16);
        assert!(m.mean_connections > 0.0);
        // Shallow buckets have plenty of candidates, so they must be full.
        assert!(m.occupancy.full_fraction[0] > 0.99);
        // The deepest buckets are nearly always empty at this density.
        assert!(m.occupancy.mean_per_bucket[15] < 0.5);
    }

    #[test]
    fn bigger_k_more_connections() {
        let space = AddressSpace::new(16).unwrap();
        let metrics = |k| {
            let t = TopologyBuilder::new(space)
                .nodes(150)
                .bucket_size(k)
                .seed(3)
                .build()
                .unwrap();
            TopologyMetrics::compute(&t).mean_connections
        };
        assert!(metrics(20) > metrics(4));
    }
}
