//! Forwarding-Kademlia overlay substrate.
//!
//! This crate implements the overlay network that the paper's simulations run
//! on (paper §III-A and §IV-B):
//!
//! * an [`AddressSpace`] of configurable bit-width (the paper uses 16 bits)
//!   with [`OverlayAddress`]es compared by the Kademlia XOR metric,
//! * arena-backed per-node routing tables read through [`TableRef`] views
//!   over exact-shared-prefix [`BucketRef`] buckets of capacity `k` (Swarm
//!   default 4, Kademlia classic 20), with a bucket-ordered next-hop
//!   search that typically inspects a single bucket,
//! * a static [`Topology`] built deterministically from a seed, and
//! * a greedy forwarding-Kademlia [`Router`] that produces full [`Route`]s so
//!   callers can attribute per-hop bandwidth and identify the paid first hop.
//!
//! # Example
//!
//! ```
//! use fairswap_kademlia::{AddressSpace, TopologyBuilder, Router};
//!
//! let space = AddressSpace::new(16)?;
//! let topology = TopologyBuilder::new(space)
//!     .nodes(100)
//!     .bucket_size(4)
//!     .seed(42)
//!     .build()?;
//! let router = Router::new(&topology);
//! let target = space.address(0x1234)?;
//! let route = router.route(topology.node_ids().next().unwrap(), target);
//! assert!(route.hop_count() <= 16);
//! # Ok::<(), fairswap_kademlia::KademliaError>(())
//! ```

mod address;
mod bucket;
mod error;
mod metrics;
mod router;
mod routing_table;
mod topology;

pub use address::{AddressSpace, Distance, OverlayAddress, Proximity};
pub use bucket::BucketRef;
pub use error::KademliaError;
pub use metrics::{BucketOccupancy, HopHistogram, TopologyMetrics};
pub use router::{Route, RouteOutcome, Router};
pub use routing_table::TableRef;
pub use topology::{BucketSizing, NodeId, Topology, TopologyBuilder};
