//! Greedy forwarding-Kademlia routing.
//!
//! In forwarding Kademlia (paper §III-A, Fig. 1) the request is *relayed*:
//! each node forwards to the peer in its own routing table closest to the
//! chunk address, and the chunk travels back along the same path. No node
//! learns the identity of the originator. For accounting purposes the
//! simulation needs the complete path, which [`Router::route`] returns.

use serde::{Deserialize, Serialize};

use crate::address::OverlayAddress;
use crate::topology::{NodeId, Topology};

/// Outcome of routing one chunk request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RouteOutcome {
    /// The route reached the node globally closest to the target — the
    /// storer under the paper's placement rule.
    Delivered,
    /// The originator itself is the globally closest node; no network
    /// traffic is generated.
    AlreadyAtStorer,
    /// Greedy forwarding reached a local minimum that is not the global
    /// closest node (possible, though rare, under sampled `k`-bucket
    /// tables). The chunk cannot be retrieved over this route.
    Stuck,
}

impl RouteOutcome {
    /// Whether the chunk was successfully retrieved.
    #[inline]
    pub fn is_delivered(&self) -> bool {
        matches!(self, Self::Delivered | Self::AlreadyAtStorer)
    }
}

/// The path a chunk request travelled.
///
/// `hops` excludes the originator and lists every node that forwarded or
/// served the request, in order; the last hop of a delivered route is the
/// storer. The *first* hop is the "zero-proximity" node the paper's Swarm
/// model pays directly (§III-B).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    originator: NodeId,
    target: OverlayAddress,
    hops: Vec<NodeId>,
    outcome: RouteOutcome,
}

impl Route {
    /// The node that issued the request.
    #[inline]
    pub fn originator(&self) -> NodeId {
        self.originator
    }

    /// The chunk address routed towards.
    #[inline]
    pub fn target(&self) -> OverlayAddress {
        self.target
    }

    /// All nodes after the originator, in forwarding order.
    #[inline]
    pub fn hops(&self) -> &[NodeId] {
        &self.hops
    }

    /// Number of hops (messages sent by the originator and relays).
    #[inline]
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// The first hop — the peer the originator contacted directly, which is
    /// the node that receives paid settlement under Swarm's default policy.
    #[inline]
    pub fn first_hop(&self) -> Option<NodeId> {
        self.hops.first().copied()
    }

    /// The final node on the path (the storer for delivered routes).
    #[inline]
    pub fn terminal(&self) -> Option<NodeId> {
        self.hops.last().copied()
    }

    /// The nodes that only *forwarded* (every hop except the terminal
    /// storer). For a one-hop route this is empty: the first hop served the
    /// chunk from its own storage.
    pub fn forwarders(&self) -> &[NodeId] {
        if self.hops.is_empty() {
            &[]
        } else {
            &self.hops[..self.hops.len() - 1]
        }
    }

    /// Routing outcome.
    #[inline]
    pub fn outcome(&self) -> RouteOutcome {
        self.outcome
    }
}

/// Stateless router over a [`Topology`].
#[derive(Debug, Clone, Copy)]
pub struct Router<'a> {
    topology: &'a Topology,
}

impl<'a> Router<'a> {
    /// Creates a router for `topology`.
    pub fn new(topology: &'a Topology) -> Self {
        Self { topology }
    }

    /// Routes a request from `originator` towards `target`.
    ///
    /// Each hop forwards to its known peer strictly closest (XOR) to the
    /// target; forwarding stops when the current node has no strictly closer
    /// peer. Because every hop strictly decreases the distance, the walk
    /// always terminates in at most `topology.len()` steps.
    ///
    /// # Panics
    ///
    /// Panics if `originator` is not part of the topology.
    pub fn route(&self, originator: NodeId, target: OverlayAddress) -> Route {
        let storer = self.topology.closest_node(target);
        if storer == originator {
            return Route {
                originator,
                target,
                hops: Vec::new(),
                outcome: RouteOutcome::AlreadyAtStorer,
            };
        }

        let mut hops = Vec::with_capacity(8);
        let mut current = originator;
        loop {
            match self.topology.next_hop(current, target) {
                Some(next) => {
                    hops.push(next);
                    current = next;
                    if current == storer {
                        return Route {
                            originator,
                            target,
                            hops,
                            outcome: RouteOutcome::Delivered,
                        };
                    }
                }
                None => {
                    // Local minimum before reaching the storer.
                    return Route {
                        originator,
                        target,
                        hops,
                        outcome: RouteOutcome::Stuck,
                    };
                }
            }
        }
    }

    /// The topology this router operates on.
    pub fn topology(&self) -> &Topology {
        self.topology
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::AddressSpace;
    use crate::topology::TopologyBuilder;

    fn topology(nodes: usize, k: usize, seed: u64) -> Topology {
        TopologyBuilder::new(AddressSpace::new(16).unwrap())
            .nodes(nodes)
            .bucket_size(k)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn route_reaches_global_closest() {
        let t = topology(500, 4, 42);
        let router = Router::new(&t);
        let space = t.space();
        let mut delivered = 0usize;
        let mut stuck = 0usize;
        for raw in (0..=0xFFFFu64).step_by(131) {
            let target = space.address(raw).unwrap();
            let route = router.route(NodeId(0), target);
            match route.outcome() {
                RouteOutcome::Delivered => {
                    delivered += 1;
                    assert_eq!(route.terminal(), Some(t.closest_node(target)));
                }
                RouteOutcome::AlreadyAtStorer => {
                    assert_eq!(route.hop_count(), 0);
                }
                RouteOutcome::Stuck => stuck += 1,
            }
        }
        assert!(delivered > 0);
        // Sampled tables may rarely get stuck; the rate must be tiny.
        assert!(
            (stuck as f64) < 0.01 * (delivered as f64 + stuck as f64),
            "stuck {stuck} vs delivered {delivered}"
        );
    }

    #[test]
    fn distance_strictly_decreases_along_route() {
        let t = topology(300, 4, 7);
        let router = Router::new(&t);
        let space = t.space();
        let target = space.address(0x5A5A).unwrap();
        let route = router.route(NodeId(3), target);
        let mut last = space.distance(t.address(NodeId(3)), target);
        for &hop in route.hops() {
            let d = space.distance(t.address(hop), target);
            assert!(d < last, "distance must strictly decrease");
            last = d;
        }
    }

    #[test]
    fn already_at_storer_short_circuits() {
        let t = topology(100, 4, 9);
        let router = Router::new(&t);
        let origin = NodeId(17);
        let target = t.address(origin);
        let route = router.route(origin, target);
        assert_eq!(route.outcome(), RouteOutcome::AlreadyAtStorer);
        assert!(route.outcome().is_delivered());
        assert_eq!(route.first_hop(), None);
        assert_eq!(route.forwarders(), &[] as &[NodeId]);
    }

    #[test]
    fn first_hop_is_in_originator_table() {
        let t = topology(400, 4, 13);
        let router = Router::new(&t);
        let target = t.space().address(0x0F0F).unwrap();
        let route = router.route(NodeId(5), target);
        if let Some(first) = route.first_hop() {
            assert!(t.table(NodeId(5)).knows(first));
        }
    }

    #[test]
    fn forwarders_exclude_terminal() {
        let t = topology(400, 4, 21);
        let router = Router::new(&t);
        let target = t.space().address(0xBEEF).unwrap();
        let route = router.route(NodeId(2), target);
        if route.hop_count() >= 1 {
            assert_eq!(route.forwarders().len(), route.hop_count() - 1);
            assert!(!route.forwarders().contains(&route.terminal().unwrap()));
        }
    }

    #[test]
    fn larger_k_never_lengthens_average_route() {
        // With more peers per bucket, greedy routing can only find better or
        // equal next hops on average (paper Table I rationale).
        let space = AddressSpace::new(16).unwrap();
        let avg_hops = |k: usize| {
            let t = TopologyBuilder::new(space)
                .nodes(500)
                .bucket_size(k)
                .seed(99)
                .build()
                .unwrap();
            let router = Router::new(&t);
            let mut total = 0usize;
            let mut count = 0usize;
            for raw in (0..=0xFFFFu64).step_by(53) {
                let route = router.route(NodeId(1), space.address(raw).unwrap());
                if route.outcome().is_delivered() {
                    total += route.hop_count();
                    count += 1;
                }
            }
            total as f64 / count as f64
        };
        assert!(avg_hops(20) <= avg_hops(4) + 0.05);
    }
}
