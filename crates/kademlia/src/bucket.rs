//! K-buckets: fixed-capacity groups of peers at one proximity order.

use serde::{Deserialize, Serialize};

use crate::address::OverlayAddress;
use crate::topology::NodeId;

/// A single routing-table bucket.
///
/// Bucket `i` of a node holds peers whose addresses share a prefix of length
/// *exactly* `i` with the node's own address (paper §IV-B: "The i-th bucket
/// of a node contains addresses that have a common prefix of length i with
/// the node's address. Each bucket contains at most k addresses.").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KBucket {
    index: u32,
    capacity: usize,
    entries: Vec<(NodeId, OverlayAddress)>,
}

impl KBucket {
    /// Creates an empty bucket for proximity order `index` with room for
    /// `capacity` peers.
    ///
    /// Entry storage is allocated lazily on first insert: most buckets of a
    /// large overlay stay empty (deep buckets rarely have candidates), and
    /// eagerly reserving `capacity` slots for `nodes × bits` buckets was
    /// the dominant memory cost of 10⁵-node topologies.
    pub fn new(index: u32, capacity: usize) -> Self {
        Self {
            index,
            capacity,
            entries: Vec::new(),
        }
    }

    /// The proximity order this bucket covers.
    #[inline]
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Maximum number of peers this bucket may hold (`k`).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of peers.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the bucket holds no peers.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the bucket is at capacity.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Pre-allocates room for `additional` more entries — used by bulk
    /// construction, which knows each bucket's final size up front and
    /// avoids growth reallocations.
    pub(crate) fn reserve_exact(&mut self, additional: usize) {
        self.entries.reserve_exact(additional);
    }

    /// Inserts a peer. Returns `false` (and does not insert) if the bucket is
    /// full or the peer is already present.
    pub fn insert(&mut self, node: NodeId, address: OverlayAddress) -> bool {
        if self.is_full() || self.contains(node) {
            return false;
        }
        self.entries.push((node, address));
        true
    }

    /// Whether `node` is in this bucket.
    pub fn contains(&self, node: NodeId) -> bool {
        self.entries.iter().any(|(id, _)| *id == node)
    }

    /// Removes a peer, preserving the order of the remaining entries.
    /// Returns `false` if the peer was not present.
    pub fn remove(&mut self, node: NodeId) -> bool {
        match self.entries.iter().position(|(id, _)| *id == node) {
            Some(index) => {
                self.entries.remove(index);
                true
            }
            None => false,
        }
    }

    /// Removes every peer (used when the bucket's owner goes offline).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Iterates over `(NodeId, OverlayAddress)` entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, OverlayAddress)> + '_ {
        self.entries.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::AddressSpace;

    fn addr(raw: u64) -> OverlayAddress {
        AddressSpace::new(16).unwrap().address(raw).unwrap()
    }

    #[test]
    fn insert_until_full() {
        let mut b = KBucket::new(3, 2);
        assert!(b.is_empty());
        assert!(b.insert(NodeId(0), addr(1)));
        assert!(b.insert(NodeId(1), addr(2)));
        assert!(b.is_full());
        assert!(!b.insert(NodeId(2), addr(3)));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn rejects_duplicates() {
        let mut b = KBucket::new(0, 4);
        assert!(b.insert(NodeId(7), addr(9)));
        assert!(!b.insert(NodeId(7), addr(9)));
        assert_eq!(b.len(), 1);
        assert!(b.contains(NodeId(7)));
        assert!(!b.contains(NodeId(8)));
    }

    #[test]
    fn iteration_preserves_insertion_order() {
        let mut b = KBucket::new(1, 8);
        for i in 0..5u64 {
            b.insert(NodeId(i as usize), addr(i));
        }
        let ids: Vec<_> = b.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn remove_preserves_order_of_rest() {
        let mut b = KBucket::new(0, 8);
        for i in 0..5u64 {
            b.insert(NodeId(i as usize), addr(i));
        }
        assert!(b.remove(NodeId(2)));
        assert!(!b.remove(NodeId(2)));
        let ids: Vec<_> = b.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 3, 4]);
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn metadata_accessors() {
        let b = KBucket::new(5, 20);
        assert_eq!(b.index(), 5);
        assert_eq!(b.capacity(), 20);
    }
}
