//! K-bucket views: fixed-capacity groups of peers at one proximity order.
//!
//! Buckets no longer own storage — entries live in the topology's
//! [`TableArena`](crate::routing_table) — so a `BucketRef` is a pair of
//! borrowed slices plus metadata, obtained through
//! [`TableRef::bucket`](crate::TableRef::bucket) /
//! [`TableRef::buckets`](crate::TableRef::buckets).

use crate::address::{AddressSpace, OverlayAddress};
use crate::topology::NodeId;

/// A read view of a single routing-table bucket.
///
/// Bucket `i` of a node holds peers whose addresses share a prefix of
/// length *exactly* `i` with the node's own address (paper §IV-B: "The
/// i-th bucket of a node contains addresses that have a common prefix of
/// length i with the node's address. Each bucket contains at most k
/// addresses.").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketRef<'a> {
    index: u32,
    capacity: usize,
    space: AddressSpace,
    ids: &'a [u32],
    raws: &'a [u64],
}

impl<'a> BucketRef<'a> {
    pub(crate) fn new(
        index: u32,
        capacity: usize,
        space: AddressSpace,
        ids: &'a [u32],
        raws: &'a [u64],
    ) -> Self {
        debug_assert_eq!(ids.len(), raws.len());
        Self {
            index,
            capacity,
            space,
            ids,
            raws,
        }
    }

    /// The proximity order this bucket covers.
    #[inline]
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Maximum number of peers this bucket may hold (`k`).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of peers.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the bucket holds no peers.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Whether the bucket is at capacity.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.ids.len() >= self.capacity
    }

    /// Whether `node` is in this bucket.
    pub fn contains(&self, node: NodeId) -> bool {
        self.ids.contains(&(node.0 as u32))
    }

    /// Iterates over `(NodeId, OverlayAddress)` entries in insertion
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, OverlayAddress)> + 'a {
        let bits = self.space.bits();
        self.ids.iter().zip(self.raws).map(move |(&id, &raw)| {
            (
                NodeId(id as usize),
                OverlayAddress::from_raw_unchecked(raw, bits),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space16() -> AddressSpace {
        AddressSpace::new(16).unwrap()
    }

    #[test]
    fn metadata_and_iteration() {
        let ids = [7u32, 9, 11];
        let raws = [0x00F0u64, 0x00F1, 0x00F2];
        let b = BucketRef::new(5, 20, space16(), &ids, &raws);
        assert_eq!(b.index(), 5);
        assert_eq!(b.capacity(), 20);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(!b.is_full());
        assert!(b.contains(NodeId(9)));
        assert!(!b.contains(NodeId(10)));
        let entries: Vec<(usize, u64)> = b.iter().map(|(id, a)| (id.0, a.raw())).collect();
        assert_eq!(entries, vec![(7, 0x00F0), (9, 0x00F1), (11, 0x00F2)]);
    }

    #[test]
    fn fullness_uses_configured_capacity() {
        let ids = [1u32, 2];
        let raws = [1u64, 2];
        let full = BucketRef::new(0, 2, space16(), &ids, &raws);
        assert!(full.is_full());
        let spare = BucketRef::new(0, 3, space16(), &ids, &raws);
        assert!(!spare.is_full());
    }

    #[test]
    fn empty_bucket() {
        let b = BucketRef::new(3, 4, space16(), &[], &[]);
        assert!(b.is_empty());
        assert_eq!(b.iter().count(), 0);
    }
}
