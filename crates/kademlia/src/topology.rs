//! Overlay topologies: node address sets plus all routing tables.
//!
//! Topologies are built statically from a seed (the paper's setup) but — to
//! support dynamic-membership experiments — also expose mutation APIs:
//! [`Topology::remove_node`] takes a node offline and incrementally repairs
//! every routing table that referenced it, and [`Topology::add_node`] brings
//! it back (Swarm nodes keep their overlay address across sessions). Both
//! operations are deterministic, preserve the structural invariants checked
//! by [`Topology::validate`], and cost a small fraction of a full rebuild
//! (see [`Topology::rebuilt_naive`] and the `churn` bench).

use std::collections::HashSet;
use std::fmt;
use std::ops::Range;

use fairswap_simcore::rng::{domain, sub_seed};
use fairswap_simcore::{derive_rng, Executor, SimRng};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

use crate::address::{AddressSpace, OverlayAddress};
use crate::error::KademliaError;
use crate::routing_table::{OwnerFill, TableArena, TableRef};

/// Index of a node in a [`Topology`].
///
/// Node ids are dense (`0..topology.len()`) so simulations can keep per-node
/// statistics in plain vectors. Ids stay stable across [`Topology::remove_node`]
/// / [`Topology::add_node`]: an offline node keeps its slot (and address) and
/// is simply not part of the live overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The underlying dense index.
    #[inline]
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// How large each routing-table bucket is.
///
/// The paper compares Swarm's default `k = 4` with Kademlia's classic
/// `k = 20` uniformly; its §V future work asks what happens "if we only
/// increase the k for a particular bucket, e.g., bucket zero" — which
/// [`BucketSizing::with_override`] expresses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketSizing {
    default: usize,
    overrides: Vec<(u32, usize)>,
}

impl BucketSizing {
    /// Uniform bucket size `k` for every bucket.
    pub fn uniform(k: usize) -> Self {
        Self {
            default: k,
            overrides: Vec::new(),
        }
    }

    /// Overrides the capacity of one bucket index, keeping the default for
    /// the rest. Later overrides of the same bucket win.
    #[must_use]
    pub fn with_override(mut self, bucket: u32, k: usize) -> Self {
        self.overrides.push((bucket, k));
        self
    }

    /// The default (non-overridden) bucket size.
    pub fn default_k(&self) -> usize {
        self.default
    }

    /// Expands to one capacity per bucket for a `bits`-bit space.
    pub fn capacities(&self, bits: u32) -> Vec<usize> {
        let mut caps = vec![self.default; bits as usize];
        for &(bucket, k) in &self.overrides {
            if let Some(slot) = caps.get_mut(bucket as usize) {
                *slot = k;
            }
        }
        caps
    }

    fn validate(&self, bits: u32) -> Result<(), KademliaError> {
        if self.capacities(bits).contains(&0) {
            return Err(KademliaError::ZeroBucketSize);
        }
        Ok(())
    }
}

/// Builder for a [`Topology`].
///
/// ```
/// use fairswap_kademlia::{AddressSpace, TopologyBuilder};
///
/// let space = AddressSpace::new(16)?;
/// let topology = TopologyBuilder::new(space)
///     .nodes(1000)
///     .bucket_size(4)
///     .seed(0xFA12)
///     .build()?;
/// assert_eq!(topology.len(), 1000);
/// # Ok::<(), fairswap_kademlia::KademliaError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    space: AddressSpace,
    nodes: usize,
    explicit_addresses: Option<Vec<u64>>,
    sizing: BucketSizing,
    seed: u64,
    threads: usize,
}

impl TopologyBuilder {
    /// Starts a builder over the given address space with the paper's
    /// defaults: 1000 nodes, uniform `k = 4`, seed `0xFA12`, single-threaded
    /// construction.
    pub fn new(space: AddressSpace) -> Self {
        Self {
            space,
            nodes: 1000,
            explicit_addresses: None,
            sizing: BucketSizing::uniform(4),
            seed: 0xFA12,
            threads: 1,
        }
    }

    /// Number of nodes to place at uniformly random distinct addresses.
    #[must_use]
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Uses an explicit list of raw node addresses instead of sampling.
    #[must_use]
    pub fn explicit_addresses<I: IntoIterator<Item = u64>>(mut self, addresses: I) -> Self {
        self.explicit_addresses = Some(addresses.into_iter().collect());
        self
    }

    /// Uniform bucket size `k`.
    #[must_use]
    pub fn bucket_size(mut self, k: usize) -> Self {
        self.sizing = BucketSizing::uniform(k);
        self
    }

    /// Full control over per-bucket capacities.
    #[must_use]
    pub fn bucket_sizing(mut self, sizing: BucketSizing) -> Self {
        self.sizing = sizing;
        self
    }

    /// RNG seed. The same seed always produces the same topology (paper:
    /// "random numbers are generated using the same seed to ensure
    /// consistency throughout all experiments").
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Worker threads used to fill routing tables (`0` = one per CPU core).
    ///
    /// Every node's buckets are sampled from its own seed-derived RNG
    /// stream, so the built topology is identical for any thread count —
    /// this knob only trades wall-clock for cores on large-`N` builds.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builds the topology: sample addresses, then fill every node's buckets
    /// by choosing `min(k_i, |candidates|)` peers uniformly without
    /// replacement from the exact-prefix candidate set.
    ///
    /// Candidate sets are located through a sorted-address index (the peers
    /// at proximity exactly `b` from an owner are the set difference of two
    /// contiguous prefix ranges), so construction costs
    /// `O(n · bits · log n)` instead of the quadratic all-pairs scan — the
    /// difference between minutes and milliseconds at 10⁵ nodes.
    ///
    /// # Errors
    ///
    /// * [`KademliaError::TooFewNodes`] for fewer than 2 nodes.
    /// * [`KademliaError::SpaceExhausted`] if the space cannot hold that many
    ///   distinct addresses.
    /// * [`KademliaError::ZeroBucketSize`] if any bucket capacity is 0.
    /// * [`KademliaError::AddressOutOfRange`] /
    ///   [`KademliaError::DuplicateAddress`] for bad explicit addresses.
    pub fn build(&self) -> Result<Topology, KademliaError> {
        self.sizing.validate(self.space.bits())?;
        let mut rng = ChaCha12Rng::seed_from_u64(self.seed);

        let addresses: Vec<OverlayAddress> = match &self.explicit_addresses {
            Some(raws) => {
                let mut seen = HashSet::with_capacity(raws.len());
                let mut out = Vec::with_capacity(raws.len());
                for &raw in raws {
                    if !seen.insert(raw) {
                        return Err(KademliaError::DuplicateAddress { raw });
                    }
                    out.push(self.space.address(raw)?);
                }
                out
            }
            None => sample_distinct_addresses(self.space, self.nodes, &mut rng)?,
        };
        if addresses.len() < 2 {
            return Err(KademliaError::TooFewNodes {
                requested: addresses.len(),
            });
        }

        let capacities = self.sizing.capacities(self.space.bits());
        let n = addresses.len();

        let index = SortedAddressIndex::new(&addresses);
        // Each owner samples its buckets from its own derived stream, so
        // neither construction order nor thread count can influence the
        // result.
        let table_seed = sub_seed(self.seed, domain::TOPOLOGY);
        let executor = Executor::new(self.threads);
        // Hand each worker a contiguous owner range; results concatenate in
        // owner order, keeping node i's buckets at arena slot i. A serial
        // build takes one range, which the arena adopts without a copy.
        let chunk = if executor.threads() == 1 {
            n
        } else {
            n.div_ceil(executor.threads() * 8).max(64)
        };
        let owner_ranges: Vec<Range<usize>> = (0..n)
            .step_by(chunk)
            .map(|start| start..(start + chunk).min(n))
            .collect();
        // Expected entries per owner, for one up-front reservation per
        // range buffer: bucket b sees ~n/2^(b+1) candidates.
        let est_per_owner: usize = capacities
            .iter()
            .enumerate()
            .map(|(b, &cap)| cap.min(n >> ((b + 1).min(63))))
            .sum();
        let bits = self.space.bits() as usize;
        let fills: Vec<OwnerFill> = executor.run(owner_ranges, |_, owners| {
            let mut fill = OwnerFill::new();
            fill.lens.reserve(owners.len() * bits);
            let entries = owners.len() * est_per_owner;
            fill.ids.reserve(entries + entries / 8 + 64);
            fill.raws.reserve(entries + entries / 8 + 64);
            for owner in owners {
                let mut owner_rng = derive_rng(table_seed, owner, 0);
                fill_table_sampled(
                    &addresses,
                    &index,
                    &capacities,
                    owner,
                    &mut owner_rng,
                    &mut fill,
                );
            }
            fill
        });
        let arena = TableArena::assemble(self.space.bits(), fills);

        let trie = AddressTrie::build(self.space, &addresses);
        let knowers = build_knowers(&arena, n);
        Ok(Topology {
            space: self.space,
            live: vec![true; n],
            live_count: n,
            addresses,
            arena,
            capacities,
            trie,
            knowers,
            sizing: self.sizing.clone(),
            seed: self.seed,
        })
    }
}

fn sample_distinct_addresses(
    space: AddressSpace,
    nodes: usize,
    rng: &mut ChaCha12Rng,
) -> Result<Vec<OverlayAddress>, KademliaError> {
    if (nodes as u128) > space.capacity() {
        return Err(KademliaError::SpaceExhausted {
            requested: nodes,
            capacity: space.capacity(),
        });
    }
    let mut seen = HashSet::with_capacity(nodes);
    let mut out = Vec::with_capacity(nodes);
    while out.len() < nodes {
        let raw = rng.gen_range(0..=space.max_raw());
        if seen.insert(raw) {
            out.push(space.address(raw).expect("sampled in range"));
        }
    }
    Ok(out)
}

/// Node slots sorted by raw address, supporting binary-search prefix
/// narrowing: the addresses sharing a given `p`-bit prefix occupy one
/// contiguous range, so the candidates at proximity exactly `b` from an
/// owner are `range(b) \ range(b + 1)` — two contiguous pieces found in
/// `O(log n)` instead of scanning all `n` addresses.
struct SortedAddressIndex {
    /// Node indices in ascending address order.
    nodes: Vec<u32>,
    /// Raw addresses in the same order.
    raws: Vec<u64>,
}

impl SortedAddressIndex {
    fn new(addresses: &[OverlayAddress]) -> Self {
        let mut nodes: Vec<u32> = (0..addresses.len() as u32).collect();
        nodes.sort_unstable_by_key(|&i| addresses[i as usize].raw());
        let raws = nodes.iter().map(|&i| addresses[i as usize].raw()).collect();
        Self { nodes, raws }
    }

    #[inline]
    fn node_at(&self, pos: usize) -> usize {
        self.nodes[pos] as usize
    }

    /// Splits `range` — all sorted positions sharing the first `depth`
    /// bits with `addr` — on bit `depth`: returns `(same, sibling)` where
    /// `same` continues `addr`'s prefix and `sibling` holds exactly the
    /// positions at proximity `depth` from `addr`. One `partition_point`
    /// per level (the shared prefix makes the bit split a contiguous cut),
    /// and the sibling side comes out as a single ascending range.
    fn split(
        &self,
        range: &Range<usize>,
        addr: OverlayAddress,
        depth: u32,
    ) -> (Range<usize>, Range<usize>) {
        debug_assert!(depth < addr.bits());
        let shift = addr.bits() - 1 - depth;
        let slice = &self.raws[range.clone()];
        let cut = range.start + slice.partition_point(|&raw| (raw >> shift) & 1 == 0);
        let zeros = range.start..cut;
        let ones = cut..range.end;
        if (addr.raw() >> shift) & 1 == 0 {
            (zeros, ones)
        } else {
            (ones, zeros)
        }
    }
}

/// Fills one owner's routing table, sampling `min(k_b, |candidates_b|)`
/// peers uniformly without replacement from each exact-prefix candidate
/// range of the sorted index, appending into the worker's shared range
/// fill. The per-bucket count doubles as the bucket's arena reservation:
/// `min(k_b, |candidates_b|)` is the most entries the bucket can ever
/// hold, under any later churn, so every initial bucket is exactly full.
fn fill_table_sampled(
    addresses: &[OverlayAddress],
    index: &SortedAddressIndex,
    capacities: &[usize],
    owner: usize,
    rng: &mut SimRng,
    fill: &mut OwnerFill,
) {
    let owner_addr = addresses[owner];
    // Sparse partial Fisher–Yates state, reused across buckets: at most
    // `k` swap records, so sampling never allocates O(candidates).
    let mut swaps: Vec<(usize, usize)> = Vec::new();
    let lookup = |swaps: &[(usize, usize)], i: usize| {
        swaps
            .iter()
            .find(|&&(at, _)| at == i)
            .map_or(i, |&(_, value)| value)
    };
    // `range` holds the sorted positions sharing the first `bucket` bits
    // with the owner; it narrows monotonically and ends at the owner alone.
    let mut range = 0..addresses.len();
    for (bucket, &capacity) in capacities.iter().enumerate() {
        // Proximity exactly `bucket`: the sibling side of the bit split.
        let (same, sibling) = index.split(&range, owner_addr, bucket as u32);
        let candidates = sibling.len();
        let take = capacity.min(candidates);
        swaps.clear();
        for i in 0..take {
            let j = rng.gen_range(i..candidates);
            let pick = lookup(&swaps, j);
            let displaced = lookup(&swaps, i);
            if let Some(entry) = swaps.iter_mut().find(|(at, _)| *at == j) {
                entry.1 = displaced;
            } else {
                swaps.push((j, displaced));
            }
            let peer = index.node_at(sibling.start + pick);
            fill.ids.push(peer as u32);
            fill.raws.push(addresses[peer].raw());
        }
        fill.lens.push(take as u32);
        range = same;
    }
    debug_assert_eq!(range.len(), 1, "final range must be the owner itself");
}

/// Reverse index: for each node, which owners currently list it.
///
/// Two passes: count in-degrees first so every per-node list is allocated
/// exactly once — tens of millions of entries at large `N`, where growth
/// reallocation used to dominate.
fn build_knowers(arena: &TableArena, n: usize) -> Vec<Vec<u32>> {
    let mut counts = vec![0u32; n];
    for owner in 0..n {
        for peer in arena.node_peers(owner) {
            counts[peer as usize] += 1;
        }
    }
    let mut knowers: Vec<Vec<u32>> = counts
        .iter()
        .map(|&c| Vec::with_capacity(c as usize))
        .collect();
    for owner in 0..n {
        for peer in arena.node_peers(owner) {
            knowers[peer as usize].push(owner as u32);
        }
    }
    // Owners are visited in ascending order, so every list is born sorted
    // — no sort pass over the (tens of millions at large `N`) entries.
    debug_assert!(knowers.iter().all(|list| list.is_sorted()));
    knowers
}

fn knowers_insert(list: &mut Vec<u32>, owner: u32) {
    if let Err(pos) = list.binary_search(&owner) {
        list.insert(pos, owner);
    }
}

fn knowers_remove(list: &mut Vec<u32>, owner: u32) {
    if let Ok(pos) = list.binary_search(&owner) {
        list.remove(pos);
    }
}

/// A forwarding-Kademlia overlay: every node's address and routing table,
/// a live-membership set, and an index for global closest-live-node queries.
///
/// Routing tables live in one contiguous arena (structure of arrays,
/// one `(offset, len)` slot range per bucket) and are read through
/// borrowed [`TableRef`] views; see `docs/ARCHITECTURE.md` for the
/// layout and why it never reallocates under churn.
#[derive(Debug, Clone)]
pub struct Topology {
    space: AddressSpace,
    addresses: Vec<OverlayAddress>,
    /// Whether each slot is currently part of the overlay.
    live: Vec<bool>,
    live_count: usize,
    /// All routing tables, arena-backed.
    arena: TableArena,
    /// Configured per-bucket capacities, shared by every node.
    capacities: Vec<usize>,
    trie: AddressTrie,
    /// `knowers[i]`: owners whose routing table currently lists node `i`
    /// (kept sorted). Makes departures O(holders) instead of O(n).
    knowers: Vec<Vec<u32>>,
    sizing: BucketSizing,
    seed: u64,
}

impl Topology {
    /// The address space of this overlay.
    #[inline]
    pub fn space(&self) -> AddressSpace {
        self.space
    }

    /// Number of node slots (live and offline).
    #[inline]
    pub fn len(&self) -> usize {
        self.addresses.len()
    }

    /// Whether the overlay has no nodes (never true for built topologies).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.addresses.is_empty()
    }

    /// Number of currently live nodes.
    #[inline]
    pub fn live_count(&self) -> usize {
        self.live_count
    }

    /// Whether `node` is currently part of the overlay.
    #[inline]
    pub fn is_live(&self, node: NodeId) -> bool {
        self.live.get(node.0).copied().unwrap_or(false)
    }

    /// The bucket sizing used to build this topology.
    pub fn sizing(&self) -> &BucketSizing {
        &self.sizing
    }

    /// The seed used to build this topology.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Iterate over all node ids (live and offline), `n0, n1, ...`.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.addresses.len()).map(NodeId)
    }

    /// Iterate over the currently live node ids, ascending.
    pub fn live_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.live
            .iter()
            .enumerate()
            .filter(|(_, &alive)| alive)
            .map(|(i, _)| NodeId(i))
    }

    /// The overlay address of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not part of this topology; use
    /// [`Topology::try_address`] for a fallible lookup.
    pub fn address(&self, node: NodeId) -> OverlayAddress {
        self.addresses[node.0]
    }

    /// Fallible address lookup.
    pub fn try_address(&self, node: NodeId) -> Result<OverlayAddress, KademliaError> {
        self.addresses
            .get(node.0)
            .copied()
            .ok_or(KademliaError::UnknownNode { index: node.0 })
    }

    /// The routing table of `node` (empty for offline nodes).
    ///
    /// # Panics
    ///
    /// Panics if `node` is not part of this topology.
    pub fn table(&self, node: NodeId) -> TableRef<'_> {
        TableRef::new(
            node,
            self.addresses[node.0],
            self.space,
            &self.arena,
            &self.capacities,
        )
    }

    /// All routing tables, in node-id order. Views compare by content, so
    /// `a.tables().eq(b.tables())` checks two topologies table-for-table.
    pub fn tables(&self) -> impl Iterator<Item = TableRef<'_>> + '_ {
        (0..self.addresses.len()).map(|i| self.table(NodeId(i)))
    }

    /// The known peer of `from` strictly closest (XOR) to `target`, if one
    /// beats `from`'s own distance — the forwarding-Kademlia relay choice.
    ///
    /// Reads the arena directly, skipping view construction: this is the
    /// innermost call of every routed chunk. See [`TableRef::next_hop`]
    /// for the search itself.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not part of this topology.
    #[inline]
    pub fn next_hop(&self, from: NodeId, target: OverlayAddress) -> Option<NodeId> {
        self.arena
            .next_hop(from.0, self.addresses[from.0].raw(), target.raw())
            .map(|(id, _)| NodeId(id as usize))
    }

    /// The known peers of `from` strictly closer (XOR) to `target` than
    /// `from` itself, nearest first, at most `limit` entries — appended to
    /// `out` (which is cleared first).
    ///
    /// The first entry (when any exists) is exactly
    /// [`Topology::next_hop`]'s choice; the rest are the fallback relays a
    /// capacity-detour routing policy may try when the greedy hop is
    /// saturated. Every entry strictly improves on `from`'s own distance,
    /// so a walk that only ever takes hops from this list still terminates.
    /// Unlike `next_hop` this scans the whole table — it is meant for the
    /// saturated slow path, not the per-hop common case.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not part of this topology.
    pub fn next_hops_into(
        &self,
        from: NodeId,
        target: OverlayAddress,
        limit: usize,
        out: &mut Vec<NodeId>,
    ) {
        out.clear();
        if limit == 0 {
            return;
        }
        let target_raw = target.raw();
        let own = self.addresses[from.0].raw() ^ target_raw;
        if own == 0 {
            // `from` sits on the target address; nothing is closer.
            return;
        }
        let bits = self.space.bits() as usize;

        // Realistic limits (a detour policy asks for a handful of
        // fallbacks) keep the whole selection on the stack: a sorted
        // insertion window, O(entries × limit) with limit ≤ 16 — no
        // allocation per call, which matters because the detour slow path
        // invokes this once per saturated hop.
        const STACK_LIMIT: usize = 16;
        if limit <= STACK_LIMIT {
            let mut best = [(u64::MAX, 0u32); STACK_LIMIT];
            let mut len = 0usize;
            for bucket in 0..bits {
                let (ids, raws) = self.arena.bucket_entries(from.0, bucket);
                for (&id, &raw) in ids.iter().zip(raws) {
                    let d = raw ^ target_raw;
                    if d >= own || (len == limit && d >= best[limit - 1].0) {
                        continue;
                    }
                    // Shift the tail right and insert in sorted position
                    // (XOR distances to distinct addresses are unique, so
                    // the order is total).
                    let mut pos = len.min(limit - 1);
                    while pos > 0 && best[pos - 1].0 > d {
                        best[pos] = best[pos - 1];
                        pos -= 1;
                    }
                    best[pos] = (d, id);
                    len = (len + 1).min(limit);
                }
            }
            out.extend(best[..len].iter().map(|&(_, id)| NodeId(id as usize)));
            return;
        }

        let mut ranked: Vec<(u64, u32)> = Vec::new();
        for bucket in 0..bits {
            let (ids, raws) = self.arena.bucket_entries(from.0, bucket);
            for (&id, &raw) in ids.iter().zip(raws) {
                let d = raw ^ target_raw;
                if d < own {
                    ranked.push((d, id));
                }
            }
        }
        // XOR distances to distinct addresses are unique, so the order is
        // total and the partial selection reproduces the full sort's prefix.
        if ranked.len() > limit {
            ranked.select_nth_unstable(limit);
            ranked.truncate(limit);
        }
        ranked.sort_unstable();
        out.extend(ranked.iter().map(|&(_, id)| NodeId(id as usize)));
    }

    /// The live node whose address is globally closest (XOR metric) to
    /// `target`.
    ///
    /// XOR distances from a fixed target to distinct addresses are unique, so
    /// the closest node is unambiguous. The paper stores each chunk at
    /// exactly this node; under churn, responsibility migrates to the
    /// closest *live* node.
    pub fn closest_node(&self, target: OverlayAddress) -> NodeId {
        self.trie.closest(target)
    }

    /// Total connections maintained across all nodes (each table entry is an
    /// open connection in the §V overhead model).
    pub fn total_connections(&self) -> usize {
        self.arena.total_connections()
    }

    /// Takes `node` offline: removes it from the live set, the closest-node
    /// index, and every routing table that listed it, then incrementally
    /// refills each affected bucket with the closest eligible live peer so
    /// the "full whenever candidates exist" invariant survives.
    ///
    /// Each refill is answered by a trie descent over the matching
    /// exact-proximity subtree, so a departure costs
    /// `O(holders × k × bits)` — the node's typical in-degree is a few
    /// dozen — instead of the `O(n²)` of a full rebuild or the former
    /// `O(holders × n)` candidate scan.
    ///
    /// # Errors
    ///
    /// * [`KademliaError::UnknownNode`] for out-of-range ids.
    /// * [`KademliaError::NodeNotLive`] if the node is already offline.
    /// * [`KademliaError::TooFewLiveNodes`] if fewer than 3 nodes are live.
    pub fn remove_node(&mut self, node: NodeId) -> Result<(), KademliaError> {
        let index = node.0;
        if index >= self.addresses.len() {
            return Err(KademliaError::UnknownNode { index });
        }
        if !self.live[index] {
            return Err(KademliaError::NodeNotLive { index });
        }
        if self.live_count <= 2 {
            return Err(KademliaError::TooFewLiveNodes {
                live: self.live_count,
            });
        }
        self.live[index] = false;
        self.live_count -= 1;
        self.trie.set_live(self.addresses[index], false);

        // Drop the departed node from every table that listed it, refilling
        // the vacated bucket where candidates remain.
        let holders = std::mem::take(&mut self.knowers[index]);
        let departed_addr = self.addresses[index];
        for owner in holders {
            let owner = owner as usize;
            let bucket = self
                .space
                .proximity(self.addresses[owner], departed_addr)
                .bucket_index();
            let removed = self.arena.remove(owner, bucket, index as u32);
            debug_assert!(removed, "knowers index out of sync");
            if let Some(replacement) = self.refill_candidate(owner, bucket) {
                let inserted = self.arena.insert(
                    owner,
                    bucket,
                    replacement as u32,
                    self.addresses[replacement].raw(),
                );
                debug_assert!(inserted, "refill candidate must fit");
                knowers_insert(&mut self.knowers[replacement], owner as u32);
            }
        }

        // The departed node drops all of its own connections.
        let peers: Vec<u32> = self.arena.node_peers(index).collect();
        for peer in peers {
            knowers_remove(&mut self.knowers[peer as usize], index as u32);
        }
        self.arena.clear_node(index);
        Ok(())
    }

    /// Brings an offline `node` back into the overlay at its original
    /// address: rebuilds its routing table from the live population
    /// (closest-per-bucket selection) and inserts it into every live
    /// bucket with spare capacity, restoring the fullness invariant.
    ///
    /// # Errors
    ///
    /// * [`KademliaError::UnknownNode`] for out-of-range ids.
    /// * [`KademliaError::NodeAlreadyLive`] if the node is already live.
    pub fn add_node(&mut self, node: NodeId) -> Result<(), KademliaError> {
        let index = node.0;
        if index >= self.addresses.len() {
            return Err(KademliaError::UnknownNode { index });
        }
        if self.live[index] {
            return Err(KademliaError::NodeAlreadyLive { index });
        }
        self.live[index] = true;
        self.live_count += 1;
        let joiner_addr = self.addresses[index];
        self.trie.set_live(joiner_addr, true);

        // 1. Rebuild the joiner's own table from the live population.
        Self::fill_table_closest(
            &mut self.arena,
            &self.trie,
            &self.addresses,
            self.space,
            index,
        );
        let peers: Vec<u32> = self.arena.node_peers(index).collect();
        for peer in peers {
            knowers_insert(&mut self.knowers[peer as usize], index as u32);
        }

        // 2. Advertise the joiner to the rest of the overlay: every live
        //    node with spare capacity in the matching bucket links to it.
        for owner in 0..self.addresses.len() {
            if owner == index || !self.live[owner] {
                continue;
            }
            let bucket = self
                .space
                .proximity(self.addresses[owner], joiner_addr)
                .bucket_index();
            if self
                .arena
                .insert(owner, bucket, index as u32, joiner_addr.raw())
            {
                knowers_insert(&mut self.knowers[index], owner as u32);
            }
        }
        Ok(())
    }

    /// The closest eligible live peer for `owner`'s bucket `bucket`, if any:
    /// live, not the owner, proximity exactly `bucket`, not already listed.
    ///
    /// Answered by descending the exact-proximity subtree of the address
    /// trie in ascending XOR distance and returning the first peer the
    /// bucket does not already hold — `O(k × bits)` against the former
    /// whole-population scan.
    fn refill_candidate(&self, owner: usize, bucket: usize) -> Option<usize> {
        let owner_addr = self.addresses[owner];
        let subtree = self.trie.sibling_subtree(owner_addr, bucket as u32)?;
        let mut found = None;
        self.trie.visit_nearest_live(
            subtree,
            bucket as u32 + 1,
            owner_addr,
            &mut |peer: usize| {
                if self.arena.contains(owner, bucket, peer as u32) {
                    true
                } else {
                    found = Some(peer);
                    false
                }
            },
        );
        found
    }

    /// Refills `owner`'s buckets in place from the current live
    /// population: per bucket, the closest `min(k, |candidates|)` live
    /// peers by XOR distance (deterministic; distances to distinct
    /// addresses never tie). Shared by [`Topology::add_node`] and
    /// [`Topology::rebuilt_naive`] so the two maintenance paths can never
    /// drift apart in selection policy.
    ///
    /// The candidates of bucket `b` live in one trie subtree (the owner's
    /// sibling at depth `b`), which is walked in ascending XOR distance, so
    /// filling a whole table costs `O(bits × k × bits)` instead of a full
    /// population scan. An associated function over split borrows because
    /// it writes the arena while walking the trie.
    fn fill_table_closest(
        arena: &mut TableArena,
        trie: &AddressTrie,
        addresses: &[OverlayAddress],
        space: AddressSpace,
        owner: usize,
    ) {
        arena.clear_node(owner);
        let owner_addr = addresses[owner];
        for bucket in 0..space.bits() {
            let Some(subtree) = trie.sibling_subtree(owner_addr, bucket) else {
                continue;
            };
            // Reserved slots are min(capacity, all-time candidates), the
            // exact occupancy bound — live candidates can only be fewer.
            let mut remaining = arena.bucket_reserved(owner, bucket as usize);
            if remaining == 0 {
                continue;
            }
            trie.visit_nearest_live(subtree, bucket + 1, owner_addr, &mut |peer: usize| {
                let inserted =
                    arena.insert(owner, bucket as usize, peer as u32, addresses[peer].raw());
                debug_assert!(inserted, "candidate must fit its bucket");
                remaining -= 1;
                remaining > 0
            });
        }
    }

    /// The live nodes whose addresses share the first `prefix_bits` bits
    /// with `anchor` — an address *region* in the sense of correlated
    /// failures (one datacenter, one jurisdiction, one /16). Returned in
    /// ascending node-id order.
    ///
    /// `prefix_bits = 0` selects the whole live population; a prefix longer
    /// than the address width selects at most the node at `anchor` itself.
    /// Answered by descending the address trie to the region's subtree and
    /// collecting its live leaves, so the cost is `O(prefix + answer)`.
    pub fn live_nodes_with_prefix(&self, anchor: OverlayAddress, prefix_bits: u32) -> Vec<NodeId> {
        let prefix_bits = prefix_bits.min(self.space.bits());
        let Some(subtree) = self.trie.prefix_subtree(anchor, prefix_bits) else {
            return Vec::new();
        };
        let mut nodes = Vec::new();
        self.trie
            .visit_nearest_live(subtree, prefix_bits, anchor, &mut |peer: usize| {
                nodes.push(NodeId(peer));
                true
            });
        nodes.sort_unstable();
        nodes
    }

    /// The `count` live nodes closest to `target` under the XOR metric, in
    /// ascending distance order (fewer if the live population is smaller).
    ///
    /// This is the selection primitive behind content-targeted scenarios:
    /// "the nodes responsible for (closest to) this popular address". A
    /// trie walk in exact distance order, `O(count × bits)`.
    pub fn closest_live_nodes(&self, target: OverlayAddress, count: usize) -> Vec<NodeId> {
        let mut nodes = Vec::with_capacity(count);
        if count == 0 {
            return nodes;
        }
        self.trie
            .visit_nearest_live(0, 0, target, &mut |peer: usize| {
                nodes.push(NodeId(peer));
                nodes.len() < count
            });
        nodes
    }

    /// The `count` live nodes with the highest scores, ranked descending
    /// with ties broken by ascending node id (fewer if the live population
    /// is smaller).
    ///
    /// `scores` is any per-node metric indexed by node id — incomes for
    /// "take out the top earners", forwarded counts for "take out the
    /// hardest workers". Slots beyond `scores.len()` score 0, and
    /// non-finite scores rank lowest, so the selection is total and
    /// deterministic for any input.
    pub fn top_k_live_by_score(&self, scores: &[f64], count: usize) -> Vec<NodeId> {
        let mut ranked: Vec<NodeId> = self.live_ids().collect();
        let score = |n: NodeId| {
            let s = scores.get(n.index()).copied().unwrap_or(0.0);
            if s.is_finite() {
                s
            } else {
                f64::NEG_INFINITY
            }
        };
        ranked.sort_by(|&a, &b| {
            score(b)
                .partial_cmp(&score(a))
                .expect("non-finite scores mapped to -inf")
                .then_with(|| a.cmp(&b))
        });
        ranked.truncate(count);
        ranked
    }

    /// Rebuilds every routing table from scratch over the current live set
    /// (deterministic closest-per-bucket selection) — the naive `O(n²)`
    /// alternative to the incremental maintenance done by
    /// [`Topology::remove_node`] / [`Topology::add_node`]. Used by benches
    /// and tests as a correctness / cost baseline.
    pub fn rebuilt_naive(&self) -> Topology {
        let mut rebuilt = self.clone();
        for owner in 0..self.addresses.len() {
            if self.live[owner] {
                Self::fill_table_closest(
                    &mut rebuilt.arena,
                    &self.trie,
                    &self.addresses,
                    self.space,
                    owner,
                );
            } else {
                rebuilt.arena.clear_node(owner);
            }
        }
        rebuilt.knowers = build_knowers(&rebuilt.arena, rebuilt.addresses.len());
        rebuilt
    }

    /// Checks structural invariants; used by tests and debug assertions.
    ///
    /// Verified invariants: addresses are distinct; offline nodes have empty
    /// tables and appear in no live table; no table contains its owner;
    /// every entry is live and sits in the bucket matching its proximity
    /// order; no bucket exceeds its capacity; every bucket whose live
    /// candidate set is at least its capacity is full; the reverse
    /// (`knowers`) index matches the tables.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = HashSet::new();
        for addr in &self.addresses {
            if !seen.insert(addr.raw()) {
                return Err(format!("duplicate address {addr}"));
            }
        }
        if self.live.iter().filter(|&&alive| alive).count() != self.live_count {
            return Err("live_count out of sync".into());
        }
        let mut knowers_check: Vec<Vec<u32>> = vec![Vec::new(); self.addresses.len()];
        for owner in 0..self.addresses.len() {
            let table = self.table(NodeId(owner));
            if !self.live[owner] {
                if table.connection_count() != 0 {
                    return Err(format!("offline node {owner} has connections"));
                }
                continue;
            }
            let owner_addr = self.addresses[owner];
            // Count live candidates per proximity order for fullness check.
            let bits = self.space.bits() as usize;
            let mut candidate_counts = vec![0usize; bits];
            for (peer, &peer_addr) in self.addresses.iter().enumerate() {
                if peer != owner && self.live[peer] {
                    let p = self.space.proximity(owner_addr, peer_addr).bucket_index();
                    candidate_counts[p] += 1;
                }
            }
            for bucket in table.buckets() {
                if bucket.len() > bucket.capacity() {
                    return Err(format!("node {owner}: bucket {} overfull", bucket.index()));
                }
                let expected = bucket
                    .capacity()
                    .min(candidate_counts[bucket.index() as usize]);
                if bucket.len() != expected {
                    return Err(format!(
                        "node {owner}: bucket {} has {} entries, expected {}",
                        bucket.index(),
                        bucket.len(),
                        expected
                    ));
                }
                for (peer, peer_addr) in bucket.iter() {
                    if peer.0 == owner {
                        return Err(format!("node {owner} lists itself"));
                    }
                    if !self.live[peer.0] {
                        return Err(format!("node {owner} lists offline {peer}"));
                    }
                    if self.addresses[peer.0] != peer_addr {
                        return Err(format!("node {owner}: stale address for {peer}"));
                    }
                    let prox = self.space.proximity(owner_addr, peer_addr);
                    if prox.bucket_index() != bucket.index() as usize {
                        return Err(format!(
                            "node {owner}: {peer} in bucket {} but proximity {}",
                            bucket.index(),
                            prox
                        ));
                    }
                    knowers_check[peer.0].push(owner as u32);
                }
            }
        }
        for list in &mut knowers_check {
            list.sort_unstable();
        }
        if knowers_check != self.knowers {
            return Err("knowers reverse index out of sync with tables".into());
        }
        Ok(())
    }
}

/// Binary trie over the node addresses for O(bits) closest-live-node
/// queries under the XOR metric. Every subtree tracks how many live
/// addresses it contains so offline nodes are skipped in O(1).
///
/// Beyond global closest-node queries, the trie answers the routing-table
/// maintenance queries that used to need population scans: the peers at
/// proximity exactly `b` from an address are one subtree
/// ([`AddressTrie::sibling_subtree`]), and
/// [`AddressTrie::visit_nearest_live`] walks any subtree in ascending XOR
/// distance. Trie nodes are a compact 16-byte representation (`u32` child
/// indices with a sentinel) so million-node tries stay cache- and
/// memory-friendly.
#[derive(Debug, Clone)]
struct AddressTrie {
    space: AddressSpace,
    nodes: Vec<TrieNode>,
}

/// Sentinel for an absent trie child.
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
enum TrieNode {
    /// Leaf: index of the overlay node and whether it is live.
    Leaf {
        /// The overlay node stored at this address.
        node: u32,
        /// Whether the node currently counts for closest-node queries.
        live: bool,
    },
    /// Internal: child trie-node indices for bit = 0 / bit = 1 ([`NIL`] when
    /// no address lies in that subtree), plus the live count of the whole
    /// subtree.
    Branch { zero: u32, one: u32, live: u32 },
}

impl AddressTrie {
    fn build(space: AddressSpace, addresses: &[OverlayAddress]) -> Self {
        let mut trie = Self {
            space,
            nodes: vec![TrieNode::Branch {
                zero: NIL,
                one: NIL,
                live: 0,
            }],
        };
        for (i, addr) in addresses.iter().enumerate() {
            trie.insert(*addr, i);
        }
        trie
    }

    fn subtree_live(&self, index: u32) -> u32 {
        match &self.nodes[index as usize] {
            TrieNode::Leaf { live, .. } => u32::from(*live),
            TrieNode::Branch { live, .. } => *live,
        }
    }

    fn insert(&mut self, addr: OverlayAddress, node_index: usize) {
        let bits = self.space.bits();
        let mut current = 0usize;
        for depth in 0..bits {
            // Inserted nodes start live: bump the subtree count on the way
            // down.
            match &mut self.nodes[current] {
                TrieNode::Branch { live, .. } => *live += 1,
                TrieNode::Leaf { .. } => {
                    unreachable!("leaves only exist at full depth; addresses are distinct")
                }
            }
            let bit = addr.bit(depth);
            let is_last = depth == bits - 1;
            let existing = match &self.nodes[current] {
                TrieNode::Branch { zero, one, .. } => {
                    if bit {
                        *one
                    } else {
                        *zero
                    }
                }
                TrieNode::Leaf { .. } => unreachable!(),
            };
            let next = if existing != NIL {
                existing as usize
            } else {
                let idx = self.nodes.len();
                assert!(idx < NIL as usize, "trie node index overflow");
                self.nodes.push(if is_last {
                    TrieNode::Leaf {
                        node: node_index as u32,
                        live: true,
                    }
                } else {
                    TrieNode::Branch {
                        zero: NIL,
                        one: NIL,
                        live: 0,
                    }
                });
                match &mut self.nodes[current] {
                    TrieNode::Branch { zero, one, .. } => {
                        if bit {
                            *one = idx as u32;
                        } else {
                            *zero = idx as u32;
                        }
                    }
                    TrieNode::Leaf { .. } => unreachable!(),
                }
                idx
            };
            current = next;
        }
        debug_assert!(
            matches!(self.nodes[current], TrieNode::Leaf { .. }),
            "insert must end on a leaf"
        );
    }

    /// Marks the leaf at `addr` live or offline, updating subtree counts.
    fn set_live(&mut self, addr: OverlayAddress, alive: bool) {
        let bits = self.space.bits();
        // Collect the root-to-leaf path first, then adjust counts. Depth is
        // bounded by the 64-bit address-space cap, so the path lives on the
        // stack.
        let mut path = [0u32; 64];
        let mut current = 0usize;
        for depth in 0..bits {
            path[depth as usize] = current as u32;
            current = match &self.nodes[current] {
                TrieNode::Branch { zero, one, .. } => {
                    let child = if addr.bit(depth) { *one } else { *zero };
                    debug_assert_ne!(child, NIL, "address was inserted at build time");
                    child as usize
                }
                TrieNode::Leaf { .. } => unreachable!("leaves only exist at full depth"),
            };
        }
        let delta: i64 = match &mut self.nodes[current] {
            TrieNode::Leaf { live, .. } => {
                if *live == alive {
                    0
                } else {
                    *live = alive;
                    if alive {
                        1
                    } else {
                        -1
                    }
                }
            }
            TrieNode::Branch { .. } => unreachable!("walked past all bits"),
        };
        if delta == 0 {
            return;
        }
        for &index in &path[..bits as usize] {
            match &mut self.nodes[index as usize] {
                TrieNode::Branch { live, .. } => {
                    *live = (i64::from(*live) + delta) as u32;
                }
                TrieNode::Leaf { .. } => unreachable!(),
            }
        }
    }

    /// Closest live stored address to `target`: walk preferring the
    /// target's own bit at each depth, falling into the sibling subtree
    /// when the preferred one holds no live address.
    ///
    /// Preferring the matching bit maximizes the shared prefix, and within a
    /// shared prefix the same rule minimizes every lower-order XOR bit, so
    /// the walk reaches the true XOR-closest live leaf.
    ///
    /// # Panics
    ///
    /// Panics if the overlay has no live nodes (the mutation APIs keep at
    /// least two alive).
    fn closest(&self, target: OverlayAddress) -> NodeId {
        let bits = self.space.bits();
        let mut current = 0usize;
        for depth in 0..bits {
            match &self.nodes[current] {
                TrieNode::Leaf { node, live } => {
                    debug_assert!(*live, "walk must stay inside live subtrees");
                    return NodeId(*node as usize);
                }
                TrieNode::Branch { zero, one, .. } => {
                    let (preferred, fallback) = if target.bit(depth) {
                        (*one, *zero)
                    } else {
                        (*zero, *one)
                    };
                    let live_child = |child: u32| {
                        (child != NIL && self.subtree_live(child) > 0).then_some(child)
                    };
                    current = live_child(preferred)
                        .or_else(|| live_child(fallback))
                        .expect("trie contains at least one live address")
                        as usize;
                }
            }
        }
        match &self.nodes[current] {
            TrieNode::Leaf { node, .. } => NodeId(*node as usize),
            TrieNode::Branch { .. } => unreachable!("walked past all bits"),
        }
    }

    /// The subtree holding exactly the stored addresses sharing the first
    /// `prefix_bits` bits with `addr`: follow `addr`'s bits for
    /// `prefix_bits` levels. `None` when no stored address has that prefix.
    /// `prefix_bits = 0` is the whole trie.
    fn prefix_subtree(&self, addr: OverlayAddress, prefix_bits: u32) -> Option<u32> {
        let mut current = 0u32;
        for depth in 0..prefix_bits {
            current = match &self.nodes[current as usize] {
                TrieNode::Branch { zero, one, .. } => {
                    let child = if addr.bit(depth) { *one } else { *zero };
                    if child == NIL {
                        return None;
                    }
                    child
                }
                TrieNode::Leaf { .. } => unreachable!("leaves only exist at full depth"),
            };
        }
        Some(current)
    }

    /// The subtree holding exactly the stored addresses at proximity
    /// `bucket` from `addr`: follow `addr`'s bits for `bucket` levels, then
    /// take the opposite-bit child. `None` when no stored address diverges
    /// from `addr` at that depth.
    fn sibling_subtree(&self, addr: OverlayAddress, bucket: u32) -> Option<u32> {
        let mut current = 0usize;
        for depth in 0..bucket {
            current = match &self.nodes[current] {
                TrieNode::Branch { zero, one, .. } => {
                    let child = if addr.bit(depth) { *one } else { *zero };
                    if child == NIL {
                        return None;
                    }
                    child as usize
                }
                TrieNode::Leaf { .. } => unreachable!("leaves only exist at full depth"),
            };
        }
        match &self.nodes[current] {
            TrieNode::Branch { zero, one, .. } => {
                // The opposite bit: addresses diverging from `addr` exactly
                // at depth `bucket` share its first `bucket` bits and differ
                // in the next one.
                let child = if addr.bit(bucket) { *zero } else { *one };
                (child != NIL).then_some(child)
            }
            TrieNode::Leaf { .. } => unreachable!("leaves only exist at full depth"),
        }
    }

    /// Visits the live node indices stored under `subtree` (whose root sits
    /// at `depth`) in ascending XOR distance from `target`, stopping as
    /// soon as `visit` returns `false`.
    ///
    /// The preferred-bit-first descent enumerates leaves in exact distance
    /// order, so "the closest live peer not in this set" and "the k closest
    /// live peers" are both O(answer × bits) walks.
    fn visit_nearest_live(
        &self,
        subtree: u32,
        depth: u32,
        target: OverlayAddress,
        visit: &mut dyn FnMut(usize) -> bool,
    ) -> bool {
        match &self.nodes[subtree as usize] {
            TrieNode::Leaf { node, live } => !*live || visit(*node as usize),
            TrieNode::Branch { zero, one, live } => {
                if *live == 0 {
                    return true;
                }
                let (preferred, fallback) = if target.bit(depth) {
                    (*one, *zero)
                } else {
                    (*zero, *one)
                };
                for child in [preferred, fallback] {
                    if child != NIL
                        && self.subtree_live(child) > 0
                        && !self.visit_nearest_live(child, depth + 1, target, visit)
                    {
                        return false;
                    }
                }
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space(bits: u32) -> AddressSpace {
        AddressSpace::new(bits).unwrap()
    }

    #[test]
    fn build_paper_scale_topology() {
        let t = TopologyBuilder::new(space(16))
            .nodes(1000)
            .bucket_size(4)
            .seed(1)
            .build()
            .unwrap();
        assert_eq!(t.len(), 1000);
        assert_eq!(t.live_count(), 1000);
        t.validate().unwrap();
    }

    #[test]
    fn same_seed_same_topology() {
        let build = |seed| {
            TopologyBuilder::new(space(16))
                .nodes(200)
                .bucket_size(4)
                .seed(seed)
                .build()
                .unwrap()
        };
        let a = build(7);
        let b = build(7);
        let c = build(8);
        assert_eq!(
            a.node_ids().map(|n| a.address(n)).collect::<Vec<_>>(),
            b.node_ids().map(|n| b.address(n)).collect::<Vec<_>>()
        );
        assert!(a.tables().eq(b.tables()));
        assert_ne!(
            a.node_ids().map(|n| a.address(n)).collect::<Vec<_>>(),
            c.node_ids().map(|n| c.address(n)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn threaded_build_matches_serial_build() {
        let build = |threads| {
            TopologyBuilder::new(space(16))
                .nodes(400)
                .bucket_size(4)
                .seed(9)
                .threads(threads)
                .build()
                .unwrap()
        };
        let serial = build(1);
        let parallel = build(8);
        assert!(serial.tables().eq(parallel.tables()));
        parallel.validate().unwrap();
    }

    #[test]
    fn build_scales_past_the_16_bit_space() {
        // 3000 nodes in a 20-bit space: impossible under 16 bits, cheap
        // under the sorted-index builder.
        let t = TopologyBuilder::new(space(20))
            .nodes(3000)
            .bucket_size(4)
            .seed(2)
            .threads(2)
            .build()
            .unwrap();
        assert_eq!(t.len(), 3000);
        // Spot-check the trie against linear scans in the wider space.
        for raw in (0..(1u64 << 20)).step_by(99_991) {
            let target = t.space().address(raw).unwrap();
            let by_scan = t
                .node_ids()
                .min_by_key(|n| t.space().distance(t.address(*n), target))
                .unwrap();
            assert_eq!(t.closest_node(target), by_scan, "target {raw:#x}");
        }
    }

    #[test]
    fn explicit_addresses_respected() {
        let t = TopologyBuilder::new(space(8))
            .explicit_addresses([1, 2, 200, 250])
            .bucket_size(2)
            .build()
            .unwrap();
        assert_eq!(t.len(), 4);
        let raws: Vec<_> = t.node_ids().map(|n| t.address(n).raw()).collect();
        assert_eq!(raws, vec![1, 2, 200, 250]);
        t.validate().unwrap();
    }

    #[test]
    fn duplicate_explicit_addresses_rejected() {
        let err = TopologyBuilder::new(space(8))
            .explicit_addresses([1, 1])
            .build()
            .unwrap_err();
        assert_eq!(err, KademliaError::DuplicateAddress { raw: 1 });
    }

    #[test]
    fn too_few_nodes_rejected() {
        let err = TopologyBuilder::new(space(8)).nodes(1).build().unwrap_err();
        assert_eq!(err, KademliaError::TooFewNodes { requested: 1 });
    }

    #[test]
    fn space_exhaustion_detected() {
        let err = TopologyBuilder::new(space(2)).nodes(5).build().unwrap_err();
        assert!(matches!(err, KademliaError::SpaceExhausted { .. }));
    }

    #[test]
    fn zero_bucket_size_rejected() {
        let err = TopologyBuilder::new(space(8))
            .nodes(4)
            .bucket_size(0)
            .build()
            .unwrap_err();
        assert_eq!(err, KademliaError::ZeroBucketSize);
    }

    #[test]
    fn closest_node_matches_linear_scan() {
        let t = TopologyBuilder::new(space(16))
            .nodes(300)
            .bucket_size(4)
            .seed(11)
            .build()
            .unwrap();
        let s = t.space();
        for raw in (0..=0xFFFFu64).step_by(977) {
            let target = s.address(raw).unwrap();
            let by_trie = t.closest_node(target);
            let by_scan = t
                .node_ids()
                .min_by_key(|n| s.distance(t.address(*n), target))
                .unwrap();
            assert_eq!(by_trie, by_scan, "target {raw:#06x}");
        }
    }

    #[test]
    fn per_bucket_override_applies() {
        let sizing = BucketSizing::uniform(2).with_override(0, 8);
        assert_eq!(sizing.capacities(4), vec![8, 2, 2, 2]);
        let t = TopologyBuilder::new(space(16))
            .nodes(400)
            .bucket_sizing(sizing)
            .seed(3)
            .build()
            .unwrap();
        t.validate().unwrap();
        // Bucket 0 has ~200 candidates, so it should be filled to 8.
        let full_zero = t
            .node_ids()
            .filter(|n| t.table(*n).bucket(0).unwrap().len() == 8)
            .count();
        assert_eq!(full_zero, 400);
    }

    #[test]
    fn later_override_wins() {
        let sizing = BucketSizing::uniform(4)
            .with_override(1, 10)
            .with_override(1, 6);
        assert_eq!(sizing.capacities(3), vec![4, 6, 4]);
        assert_eq!(sizing.default_k(), 4);
    }

    #[test]
    fn connection_counts_grow_with_k() {
        let build = |k| {
            TopologyBuilder::new(space(16))
                .nodes(300)
                .bucket_size(k)
                .seed(5)
                .build()
                .unwrap()
                .total_connections()
        };
        assert!(build(20) > build(4));
    }

    #[test]
    fn try_address_unknown_node() {
        let t = TopologyBuilder::new(space(8))
            .nodes(4)
            .bucket_size(2)
            .seed(1)
            .build()
            .unwrap();
        assert!(t.try_address(NodeId(99)).is_err());
        assert!(t.try_address(NodeId(0)).is_ok());
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(17).to_string(), "n17");
    }

    // ---- dynamic membership ------------------------------------------

    fn dynamic_topology(nodes: usize, k: usize, seed: u64) -> Topology {
        TopologyBuilder::new(space(16))
            .nodes(nodes)
            .bucket_size(k)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn remove_node_keeps_every_surviving_table_consistent() {
        let mut t = dynamic_topology(200, 4, 21);
        for victim in [3usize, 77, 150, 9, 42] {
            t.remove_node(NodeId(victim)).unwrap();
            t.validate().unwrap();
            assert!(!t.is_live(NodeId(victim)));
            assert_eq!(t.table(NodeId(victim)).connection_count(), 0);
            // No surviving table dangles a reference to the departed node.
            for owner in t.live_ids() {
                assert!(!t.table(owner).knows(NodeId(victim)));
            }
        }
        assert_eq!(t.live_count(), 195);
    }

    #[test]
    fn closest_node_skips_offline_nodes() {
        let mut t = dynamic_topology(120, 4, 23);
        let target = t.space().address(0x4242).unwrap();
        let first = t.closest_node(target);
        t.remove_node(first).unwrap();
        let second = t.closest_node(target);
        assert_ne!(first, second);
        assert!(t.is_live(second));
        // Matches a linear scan over live nodes.
        let by_scan = t
            .live_ids()
            .min_by_key(|n| t.space().distance(t.address(*n), target))
            .unwrap();
        assert_eq!(second, by_scan);
    }

    #[test]
    fn add_node_restores_membership_and_invariants() {
        let mut t = dynamic_topology(150, 4, 29);
        let node = NodeId(60);
        t.remove_node(node).unwrap();
        t.add_node(node).unwrap();
        t.validate().unwrap();
        assert!(t.is_live(node));
        assert_eq!(t.live_count(), 150);
        // The rejoined node is routable again.
        let target = t.address(node);
        assert_eq!(t.closest_node(target), node);
    }

    #[test]
    fn churn_sequence_preserves_invariants() {
        let mut t = dynamic_topology(100, 3, 31);
        let sequence = [5usize, 17, 30, 44, 61, 83];
        for &node in &sequence {
            t.remove_node(NodeId(node)).unwrap();
        }
        t.validate().unwrap();
        for &node in &sequence[..3] {
            t.add_node(NodeId(node)).unwrap();
        }
        t.validate().unwrap();
        assert_eq!(t.live_count(), 100 - 3);
        // Closest-node queries agree with linear scans across the whole
        // address space.
        for raw in (0..=0xFFFFu64).step_by(2711) {
            let target = t.space().address(raw).unwrap();
            let by_scan = t
                .live_ids()
                .min_by_key(|n| t.space().distance(t.address(*n), target))
                .unwrap();
            assert_eq!(t.closest_node(target), by_scan, "target {raw:#06x}");
        }
    }

    #[test]
    fn mutation_errors() {
        let mut t = dynamic_topology(10, 2, 37);
        assert_eq!(
            t.remove_node(NodeId(99)).unwrap_err(),
            KademliaError::UnknownNode { index: 99 }
        );
        assert_eq!(
            t.add_node(NodeId(0)).unwrap_err(),
            KademliaError::NodeAlreadyLive { index: 0 }
        );
        t.remove_node(NodeId(0)).unwrap();
        assert_eq!(
            t.remove_node(NodeId(0)).unwrap_err(),
            KademliaError::NodeNotLive { index: 0 }
        );
        // Drain down to the floor.
        for i in 1..8 {
            t.remove_node(NodeId(i)).unwrap();
        }
        assert_eq!(
            t.remove_node(NodeId(8)).unwrap_err(),
            KademliaError::TooFewLiveNodes { live: 2 }
        );
    }

    #[test]
    fn incremental_maintenance_matches_naive_rebuild_occupancy() {
        let mut t = dynamic_topology(180, 4, 41);
        for node in [4usize, 90, 140] {
            t.remove_node(NodeId(node)).unwrap();
        }
        t.add_node(NodeId(90)).unwrap();
        let naive = t.rebuilt_naive();
        naive.validate().unwrap();
        // Selection policies differ, but per-bucket occupancy (and hence
        // the fullness invariant) must agree exactly.
        for owner in t.live_ids() {
            for (incremental, rebuilt) in t.table(owner).buckets().zip(naive.table(owner).buckets())
            {
                assert_eq!(
                    incremental.len(),
                    rebuilt.len(),
                    "owner {owner} bucket {}",
                    incremental.index()
                );
            }
        }
    }

    #[test]
    fn removal_is_deterministic() {
        let run = || {
            let mut t = dynamic_topology(150, 4, 43);
            t.remove_node(NodeId(12)).unwrap();
            t.remove_node(NodeId(99)).unwrap();
            t.add_node(NodeId(12)).unwrap();
            t
        };
        let a = run();
        let b = run();
        assert!(a.tables().eq(b.tables()));
    }

    #[test]
    fn prefix_selection_matches_linear_scan() {
        let mut t = dynamic_topology(300, 4, 51);
        t.remove_node(NodeId(17)).unwrap();
        let anchor = t.address(NodeId(0));
        for prefix_bits in [0u32, 1, 3, 6, 16, 99] {
            let effective = prefix_bits.min(16);
            let shift = 16 - effective;
            let expected: Vec<NodeId> = t
                .node_ids()
                .filter(|&n| {
                    t.is_live(n) && (t.address(n).raw() >> shift) == (anchor.raw() >> shift)
                })
                .collect();
            assert_eq!(
                t.live_nodes_with_prefix(anchor, prefix_bits),
                expected,
                "prefix_bits = {prefix_bits}"
            );
        }
        // The anchor owner itself always matches the full prefix.
        assert_eq!(t.live_nodes_with_prefix(anchor, 16), vec![NodeId(0)]);
    }

    #[test]
    fn closest_live_nodes_match_sorted_distances() {
        let mut t = dynamic_topology(200, 4, 53);
        t.remove_node(NodeId(5)).unwrap();
        let target = t.space().address(0x1A2B).unwrap();
        let got = t.closest_live_nodes(target, 10);
        let mut expected: Vec<NodeId> = t.live_ids().collect();
        expected.sort_by_key(|&n| t.space().distance(t.address(n), target).raw());
        expected.truncate(10);
        assert_eq!(got, expected);
        // Count 0 and oversized counts behave.
        assert!(t.closest_live_nodes(target, 0).is_empty());
        assert_eq!(t.closest_live_nodes(target, 10_000).len(), 199);
    }

    #[test]
    fn next_hops_ranking_matches_table_scan_and_leads_with_next_hop() {
        let t = dynamic_topology(200, 4, 59);
        let mut out = Vec::new();
        for raw in [0x0000u64, 0x1A2B, 0x7777, 0xFFFF, 0x00FF] {
            let target = t.space().address(raw).unwrap();
            for from in [NodeId(0), NodeId(7), NodeId(131)] {
                let own = t.space().distance(t.address(from), target);
                // Reference: every known peer strictly closer than the
                // owner, ranked by distance.
                let mut expected: Vec<NodeId> = t
                    .table(from)
                    .peers()
                    .filter(|(_, addr)| t.space().distance(*addr, target) < own)
                    .map(|(id, _)| id)
                    .collect();
                expected.sort_by_key(|&n| t.space().distance(t.address(n), target).raw());
                t.next_hops_into(from, target, usize::MAX, &mut out);
                assert_eq!(out, expected, "from {from} target {raw:#06x}");
                // The head of the ranking is the greedy next hop.
                assert_eq!(out.first().copied(), t.next_hop(from, target));
                // Truncation keeps the nearest prefix.
                t.next_hops_into(from, target, 2, &mut out);
                assert_eq!(out, expected[..expected.len().min(2)]);
                // Limit 0 clears the buffer.
                t.next_hops_into(from, target, 0, &mut out);
                assert!(out.is_empty());
            }
        }
    }

    #[test]
    fn top_k_by_score_ranks_live_nodes_deterministically() {
        let mut t = dynamic_topology(50, 4, 57);
        let mut scores = vec![1.0; 50];
        scores[7] = 100.0;
        scores[3] = 100.0;
        scores[20] = 50.0;
        scores[9] = f64::NAN;
        let top = t.top_k_live_by_score(&scores, 3);
        // Ties break toward the lower id.
        assert_eq!(top, vec![NodeId(3), NodeId(7), NodeId(20)]);
        // Offline nodes never rank.
        t.remove_node(NodeId(7)).unwrap();
        assert_eq!(
            t.top_k_live_by_score(&scores, 2),
            vec![NodeId(3), NodeId(20)]
        );
        // Short score vectors and oversized counts are total.
        let all = t.top_k_live_by_score(&scores[..10], 10_000);
        assert_eq!(all.len(), 49);
        // NaN ranks last.
        assert_eq!(all.last().copied(), Some(NodeId(9)));
    }
}
