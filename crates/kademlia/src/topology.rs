//! Static overlay topologies: node address sets plus all routing tables.

use std::collections::HashSet;
use std::fmt;

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

use crate::address::{AddressSpace, OverlayAddress};
use crate::error::KademliaError;
use crate::routing_table::RoutingTable;

/// Index of a node in a [`Topology`].
///
/// Node ids are dense (`0..topology.len()`) so simulations can keep per-node
/// statistics in plain vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The underlying dense index.
    #[inline]
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// How large each routing-table bucket is.
///
/// The paper compares Swarm's default `k = 4` with Kademlia's classic
/// `k = 20` uniformly; its §V future work asks what happens "if we only
/// increase the k for a particular bucket, e.g., bucket zero" — which
/// [`BucketSizing::with_override`] expresses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketSizing {
    default: usize,
    overrides: Vec<(u32, usize)>,
}

impl BucketSizing {
    /// Uniform bucket size `k` for every bucket.
    pub fn uniform(k: usize) -> Self {
        Self {
            default: k,
            overrides: Vec::new(),
        }
    }

    /// Overrides the capacity of one bucket index, keeping the default for
    /// the rest. Later overrides of the same bucket win.
    #[must_use]
    pub fn with_override(mut self, bucket: u32, k: usize) -> Self {
        self.overrides.push((bucket, k));
        self
    }

    /// The default (non-overridden) bucket size.
    pub fn default_k(&self) -> usize {
        self.default
    }

    /// Expands to one capacity per bucket for a `bits`-bit space.
    pub fn capacities(&self, bits: u32) -> Vec<usize> {
        let mut caps = vec![self.default; bits as usize];
        for &(bucket, k) in &self.overrides {
            if let Some(slot) = caps.get_mut(bucket as usize) {
                *slot = k;
            }
        }
        caps
    }

    fn validate(&self, bits: u32) -> Result<(), KademliaError> {
        if self.capacities(bits).iter().any(|&k| k == 0) {
            return Err(KademliaError::ZeroBucketSize);
        }
        Ok(())
    }
}

/// Builder for a [`Topology`].
///
/// ```
/// use fairswap_kademlia::{AddressSpace, TopologyBuilder};
///
/// let space = AddressSpace::new(16)?;
/// let topology = TopologyBuilder::new(space)
///     .nodes(1000)
///     .bucket_size(4)
///     .seed(0xFA12)
///     .build()?;
/// assert_eq!(topology.len(), 1000);
/// # Ok::<(), fairswap_kademlia::KademliaError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    space: AddressSpace,
    nodes: usize,
    explicit_addresses: Option<Vec<u64>>,
    sizing: BucketSizing,
    seed: u64,
}

impl TopologyBuilder {
    /// Starts a builder over the given address space with the paper's
    /// defaults: 1000 nodes, uniform `k = 4`, seed `0xFA12`.
    pub fn new(space: AddressSpace) -> Self {
        Self {
            space,
            nodes: 1000,
            explicit_addresses: None,
            sizing: BucketSizing::uniform(4),
            seed: 0xFA12,
        }
    }

    /// Number of nodes to place at uniformly random distinct addresses.
    #[must_use]
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Uses an explicit list of raw node addresses instead of sampling.
    #[must_use]
    pub fn explicit_addresses<I: IntoIterator<Item = u64>>(mut self, addresses: I) -> Self {
        self.explicit_addresses = Some(addresses.into_iter().collect());
        self
    }

    /// Uniform bucket size `k`.
    #[must_use]
    pub fn bucket_size(mut self, k: usize) -> Self {
        self.sizing = BucketSizing::uniform(k);
        self
    }

    /// Full control over per-bucket capacities.
    #[must_use]
    pub fn bucket_sizing(mut self, sizing: BucketSizing) -> Self {
        self.sizing = sizing;
        self
    }

    /// RNG seed. The same seed always produces the same topology (paper:
    /// "random numbers are generated using the same seed to ensure
    /// consistency throughout all experiments").
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the topology: sample addresses, then fill every node's buckets
    /// by choosing `min(k_i, |candidates|)` peers uniformly without
    /// replacement from the exact-prefix candidate set.
    ///
    /// # Errors
    ///
    /// * [`KademliaError::TooFewNodes`] for fewer than 2 nodes.
    /// * [`KademliaError::SpaceExhausted`] if the space cannot hold that many
    ///   distinct addresses.
    /// * [`KademliaError::ZeroBucketSize`] if any bucket capacity is 0.
    /// * [`KademliaError::AddressOutOfRange`] /
    ///   [`KademliaError::DuplicateAddress`] for bad explicit addresses.
    pub fn build(&self) -> Result<Topology, KademliaError> {
        self.sizing.validate(self.space.bits())?;
        let mut rng = ChaCha12Rng::seed_from_u64(self.seed);

        let addresses: Vec<OverlayAddress> = match &self.explicit_addresses {
            Some(raws) => {
                let mut seen = HashSet::with_capacity(raws.len());
                let mut out = Vec::with_capacity(raws.len());
                for &raw in raws {
                    if !seen.insert(raw) {
                        return Err(KademliaError::DuplicateAddress { raw });
                    }
                    out.push(self.space.address(raw)?);
                }
                out
            }
            None => sample_distinct_addresses(self.space, self.nodes, &mut rng)?,
        };
        if addresses.len() < 2 {
            return Err(KademliaError::TooFewNodes {
                requested: addresses.len(),
            });
        }

        let capacities = self.sizing.capacities(self.space.bits());
        let bits = self.space.bits() as usize;
        let n = addresses.len();

        let mut tables = Vec::with_capacity(n);
        // Reusable per-bucket candidate scratch space.
        let mut candidates: Vec<Vec<usize>> = vec![Vec::new(); bits];
        for owner in 0..n {
            for bucket in candidates.iter_mut() {
                bucket.clear();
            }
            let owner_addr = addresses[owner];
            for (peer, &peer_addr) in addresses.iter().enumerate() {
                if peer == owner {
                    continue;
                }
                let prox = self.space.proximity(owner_addr, peer_addr);
                candidates[prox.bucket_index()].push(peer);
            }
            let mut table = RoutingTable::new(NodeId(owner), owner_addr, self.space, &capacities);
            for (i, bucket_candidates) in candidates.iter_mut().enumerate() {
                let take = capacities[i].min(bucket_candidates.len());
                if take == 0 {
                    continue;
                }
                // `choose_multiple` samples without replacement; shuffle-free
                // partial Fisher-Yates keeps determinism cheap.
                bucket_candidates.partial_shuffle(&mut rng, take);
                for &peer in bucket_candidates.iter().take(take) {
                    let inserted = table.insert(NodeId(peer), addresses[peer]);
                    debug_assert!(inserted, "candidate must fit its bucket");
                }
            }
            tables.push(table);
        }

        let trie = AddressTrie::build(self.space, &addresses);
        Ok(Topology {
            space: self.space,
            addresses,
            tables,
            trie,
            sizing: self.sizing.clone(),
            seed: self.seed,
        })
    }
}

fn sample_distinct_addresses(
    space: AddressSpace,
    nodes: usize,
    rng: &mut ChaCha12Rng,
) -> Result<Vec<OverlayAddress>, KademliaError> {
    if (nodes as u128) > space.capacity() {
        return Err(KademliaError::SpaceExhausted {
            requested: nodes,
            capacity: space.capacity(),
        });
    }
    let mut seen = HashSet::with_capacity(nodes);
    let mut out = Vec::with_capacity(nodes);
    while out.len() < nodes {
        let raw = rng.gen_range(0..=space.max_raw());
        if seen.insert(raw) {
            out.push(space.address(raw).expect("sampled in range"));
        }
    }
    Ok(out)
}

/// A static forwarding-Kademlia overlay: every node's address and routing
/// table, plus an index for global closest-node queries.
#[derive(Debug, Clone)]
pub struct Topology {
    space: AddressSpace,
    addresses: Vec<OverlayAddress>,
    tables: Vec<RoutingTable>,
    trie: AddressTrie,
    sizing: BucketSizing,
    seed: u64,
}

impl Topology {
    /// The address space of this overlay.
    #[inline]
    pub fn space(&self) -> AddressSpace {
        self.space
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.addresses.len()
    }

    /// Whether the overlay has no nodes (never true for built topologies).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.addresses.is_empty()
    }

    /// The bucket sizing used to build this topology.
    pub fn sizing(&self) -> &BucketSizing {
        &self.sizing
    }

    /// The seed used to build this topology.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Iterate over all node ids, `n0, n1, ...`.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.addresses.len()).map(NodeId)
    }

    /// The overlay address of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not part of this topology; use
    /// [`Topology::try_address`] for a fallible lookup.
    pub fn address(&self, node: NodeId) -> OverlayAddress {
        self.addresses[node.0]
    }

    /// Fallible address lookup.
    pub fn try_address(&self, node: NodeId) -> Result<OverlayAddress, KademliaError> {
        self.addresses
            .get(node.0)
            .copied()
            .ok_or(KademliaError::UnknownNode { index: node.0 })
    }

    /// The routing table of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not part of this topology.
    pub fn table(&self, node: NodeId) -> &RoutingTable {
        &self.tables[node.0]
    }

    /// All routing tables, indexed by node id.
    pub fn tables(&self) -> &[RoutingTable] {
        &self.tables
    }

    /// The node whose address is globally closest (XOR metric) to `target`.
    ///
    /// XOR distances from a fixed target to distinct addresses are unique, so
    /// the closest node is unambiguous. The paper stores each chunk at
    /// exactly this node.
    pub fn closest_node(&self, target: OverlayAddress) -> NodeId {
        self.trie.closest(target)
    }

    /// Total connections maintained across all nodes (each table entry is an
    /// open connection in the §V overhead model).
    pub fn total_connections(&self) -> usize {
        self.tables.iter().map(RoutingTable::connection_count).sum()
    }

    /// Checks structural invariants; used by tests and debug assertions.
    ///
    /// Verified invariants: addresses are distinct; no table contains its
    /// owner; every entry sits in the bucket matching its proximity order;
    /// no bucket exceeds its capacity; every bucket whose candidate set is at
    /// least its capacity is full.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = HashSet::new();
        for addr in &self.addresses {
            if !seen.insert(addr.raw()) {
                return Err(format!("duplicate address {addr}"));
            }
        }
        for (owner, table) in self.tables.iter().enumerate() {
            let owner_addr = self.addresses[owner];
            // Count candidates per proximity order for fullness check.
            let bits = self.space.bits() as usize;
            let mut candidate_counts = vec![0usize; bits];
            for (peer, &peer_addr) in self.addresses.iter().enumerate() {
                if peer != owner {
                    let p = self.space.proximity(owner_addr, peer_addr).bucket_index();
                    candidate_counts[p] += 1;
                }
            }
            for bucket in table.buckets() {
                if bucket.len() > bucket.capacity() {
                    return Err(format!("node {owner}: bucket {} overfull", bucket.index()));
                }
                let expected = bucket.capacity().min(candidate_counts[bucket.index() as usize]);
                if bucket.len() != expected {
                    return Err(format!(
                        "node {owner}: bucket {} has {} entries, expected {}",
                        bucket.index(),
                        bucket.len(),
                        expected
                    ));
                }
                for (peer, peer_addr) in bucket.iter() {
                    if peer.0 == owner {
                        return Err(format!("node {owner} lists itself"));
                    }
                    if self.addresses[peer.0] != peer_addr {
                        return Err(format!("node {owner}: stale address for {peer}"));
                    }
                    let prox = self.space.proximity(owner_addr, peer_addr);
                    if prox.bucket_index() != bucket.index() as usize {
                        return Err(format!(
                            "node {owner}: {peer} in bucket {} but proximity {}",
                            bucket.index(),
                            prox
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Binary trie over the node addresses for O(bits) closest-node queries
/// under the XOR metric.
#[derive(Debug, Clone)]
struct AddressTrie {
    space: AddressSpace,
    nodes: Vec<TrieNode>,
}

#[derive(Debug, Clone)]
enum TrieNode {
    /// Leaf: index of the overlay node.
    Leaf(usize),
    /// Internal: child trie-node indices for bit = 0 / bit = 1 (either may be
    /// absent when no address lies in that subtree).
    Branch {
        zero: Option<usize>,
        one: Option<usize>,
    },
}

impl AddressTrie {
    fn build(space: AddressSpace, addresses: &[OverlayAddress]) -> Self {
        let mut trie = Self {
            space,
            nodes: vec![TrieNode::Branch { zero: None, one: None }],
        };
        for (i, addr) in addresses.iter().enumerate() {
            trie.insert(*addr, i);
        }
        trie
    }

    fn insert(&mut self, addr: OverlayAddress, node_index: usize) {
        let bits = self.space.bits();
        let mut current = 0usize;
        for depth in 0..bits {
            let bit = addr.bit(depth);
            let is_last = depth == bits - 1;
            let existing = match &self.nodes[current] {
                TrieNode::Branch { zero, one } => {
                    if bit {
                        *one
                    } else {
                        *zero
                    }
                }
                TrieNode::Leaf(_) => {
                    unreachable!("leaves only exist at full depth; addresses are distinct")
                }
            };
            let next = match existing {
                Some(next) => next,
                None => {
                    let idx = self.nodes.len();
                    self.nodes.push(if is_last {
                        TrieNode::Leaf(node_index)
                    } else {
                        TrieNode::Branch { zero: None, one: None }
                    });
                    match &mut self.nodes[current] {
                        TrieNode::Branch { zero, one } => {
                            if bit {
                                *one = Some(idx);
                            } else {
                                *zero = Some(idx);
                            }
                        }
                        TrieNode::Leaf(_) => unreachable!(),
                    }
                    idx
                }
            };
            current = next;
        }
        debug_assert!(
            matches!(self.nodes[current], TrieNode::Leaf(_)),
            "insert must end on a leaf"
        );
    }

    /// Closest stored address to `target`: walk preferring the target's own
    /// bit at each depth, falling into the sibling subtree when absent.
    ///
    /// Preferring the matching bit maximizes the shared prefix, and within a
    /// shared prefix the same rule minimizes every lower-order XOR bit, so
    /// the walk reaches the true XOR-closest leaf.
    fn closest(&self, target: OverlayAddress) -> NodeId {
        let bits = self.space.bits();
        let mut current = 0usize;
        for depth in 0..bits {
            match &self.nodes[current] {
                TrieNode::Leaf(node) => return NodeId(*node),
                TrieNode::Branch { zero, one } => {
                    let (preferred, fallback) = if target.bit(depth) {
                        (*one, *zero)
                    } else {
                        (*zero, *one)
                    };
                    current = preferred
                        .or(fallback)
                        .expect("trie contains at least one address");
                }
            }
        }
        match &self.nodes[current] {
            TrieNode::Leaf(node) => NodeId(*node),
            TrieNode::Branch { .. } => unreachable!("walked past all bits"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space(bits: u32) -> AddressSpace {
        AddressSpace::new(bits).unwrap()
    }

    #[test]
    fn build_paper_scale_topology() {
        let t = TopologyBuilder::new(space(16))
            .nodes(1000)
            .bucket_size(4)
            .seed(1)
            .build()
            .unwrap();
        assert_eq!(t.len(), 1000);
        t.validate().unwrap();
    }

    #[test]
    fn same_seed_same_topology() {
        let build = |seed| {
            TopologyBuilder::new(space(16))
                .nodes(200)
                .bucket_size(4)
                .seed(seed)
                .build()
                .unwrap()
        };
        let a = build(7);
        let b = build(7);
        let c = build(8);
        assert_eq!(
            a.node_ids().map(|n| a.address(n)).collect::<Vec<_>>(),
            b.node_ids().map(|n| b.address(n)).collect::<Vec<_>>()
        );
        assert_eq!(a.tables(), b.tables());
        assert_ne!(
            a.node_ids().map(|n| a.address(n)).collect::<Vec<_>>(),
            c.node_ids().map(|n| c.address(n)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn explicit_addresses_respected() {
        let t = TopologyBuilder::new(space(8))
            .explicit_addresses([1, 2, 200, 250])
            .bucket_size(2)
            .build()
            .unwrap();
        assert_eq!(t.len(), 4);
        let raws: Vec<_> = t.node_ids().map(|n| t.address(n).raw()).collect();
        assert_eq!(raws, vec![1, 2, 200, 250]);
        t.validate().unwrap();
    }

    #[test]
    fn duplicate_explicit_addresses_rejected() {
        let err = TopologyBuilder::new(space(8))
            .explicit_addresses([1, 1])
            .build()
            .unwrap_err();
        assert_eq!(err, KademliaError::DuplicateAddress { raw: 1 });
    }

    #[test]
    fn too_few_nodes_rejected() {
        let err = TopologyBuilder::new(space(8)).nodes(1).build().unwrap_err();
        assert_eq!(err, KademliaError::TooFewNodes { requested: 1 });
    }

    #[test]
    fn space_exhaustion_detected() {
        let err = TopologyBuilder::new(space(2)).nodes(5).build().unwrap_err();
        assert!(matches!(err, KademliaError::SpaceExhausted { .. }));
    }

    #[test]
    fn zero_bucket_size_rejected() {
        let err = TopologyBuilder::new(space(8))
            .nodes(4)
            .bucket_size(0)
            .build()
            .unwrap_err();
        assert_eq!(err, KademliaError::ZeroBucketSize);
    }

    #[test]
    fn closest_node_matches_linear_scan() {
        let t = TopologyBuilder::new(space(16))
            .nodes(300)
            .bucket_size(4)
            .seed(11)
            .build()
            .unwrap();
        let s = t.space();
        for raw in (0..=0xFFFFu64).step_by(977) {
            let target = s.address(raw).unwrap();
            let by_trie = t.closest_node(target);
            let by_scan = t
                .node_ids()
                .min_by_key(|n| s.distance(t.address(*n), target))
                .unwrap();
            assert_eq!(by_trie, by_scan, "target {raw:#06x}");
        }
    }

    #[test]
    fn per_bucket_override_applies() {
        let sizing = BucketSizing::uniform(2).with_override(0, 8);
        assert_eq!(sizing.capacities(4), vec![8, 2, 2, 2]);
        let t = TopologyBuilder::new(space(16))
            .nodes(400)
            .bucket_sizing(sizing)
            .seed(3)
            .build()
            .unwrap();
        t.validate().unwrap();
        // Bucket 0 has ~200 candidates, so it should be filled to 8.
        let full_zero = t
            .node_ids()
            .filter(|n| t.table(*n).bucket(0).unwrap().len() == 8)
            .count();
        assert_eq!(full_zero, 400);
    }

    #[test]
    fn later_override_wins() {
        let sizing = BucketSizing::uniform(4)
            .with_override(1, 10)
            .with_override(1, 6);
        assert_eq!(sizing.capacities(3), vec![4, 6, 4]);
        assert_eq!(sizing.default_k(), 4);
    }

    #[test]
    fn connection_counts_grow_with_k() {
        let build = |k| {
            TopologyBuilder::new(space(16))
                .nodes(300)
                .bucket_size(k)
                .seed(5)
                .build()
                .unwrap()
                .total_connections()
        };
        assert!(build(20) > build(4));
    }

    #[test]
    fn try_address_unknown_node() {
        let t = TopologyBuilder::new(space(8))
            .nodes(4)
            .bucket_size(2)
            .seed(1)
            .build()
            .unwrap();
        assert!(t.try_address(NodeId(99)).is_err());
        assert!(t.try_address(NodeId(0)).is_ok());
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(17).to_string(), "n17");
    }
}
