//! Per-node routing tables.

use serde::{Deserialize, Serialize};

use crate::address::{AddressSpace, OverlayAddress, Proximity};
use crate::bucket::KBucket;
use crate::topology::NodeId;

/// The routing table of one overlay node: `bits` buckets of capacity `k`
/// (possibly overridden per bucket), bucket `i` holding peers at proximity
/// order exactly `i`.
///
/// Tables are static for the lifetime of a simulation, mirroring the paper's
/// setup ("The routing tables remain static for the entirety of the
/// experiments").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingTable {
    owner: NodeId,
    owner_address: OverlayAddress,
    space: AddressSpace,
    buckets: Vec<KBucket>,
}

impl RoutingTable {
    /// Creates an empty routing table for `owner` where bucket `i` has
    /// capacity `capacities[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `capacities.len() != space.bits()`.
    pub fn new(
        owner: NodeId,
        owner_address: OverlayAddress,
        space: AddressSpace,
        capacities: &[usize],
    ) -> Self {
        assert_eq!(
            capacities.len(),
            space.bits() as usize,
            "one capacity per bucket required"
        );
        let buckets = capacities
            .iter()
            .enumerate()
            .map(|(i, &cap)| KBucket::new(i as u32, cap))
            .collect();
        Self {
            owner,
            owner_address,
            space,
            buckets,
        }
    }

    /// The node owning this table.
    #[inline]
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// The owner's overlay address.
    #[inline]
    pub fn owner_address(&self) -> OverlayAddress {
        self.owner_address
    }

    /// The address space this table lives in.
    #[inline]
    pub fn space(&self) -> AddressSpace {
        self.space
    }

    /// Number of buckets (= address-space bit-width).
    #[inline]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Access a bucket by index.
    pub fn bucket(&self, index: usize) -> Option<&KBucket> {
        self.buckets.get(index)
    }

    /// Pre-allocates room for `additional` entries in bucket `index` (bulk
    /// construction fast path; see [`KBucket::reserve_exact`]).
    pub(crate) fn reserve_bucket(&mut self, index: usize, additional: usize) {
        if let Some(bucket) = self.buckets.get_mut(index) {
            bucket.reserve_exact(additional);
        }
    }

    /// Iterate over all buckets, shallowest (bucket 0) first.
    pub fn buckets(&self) -> impl Iterator<Item = &KBucket> {
        self.buckets.iter()
    }

    /// Total number of peers across all buckets (the node's connection
    /// count — the §V overhead discussion charges per open connection).
    pub fn connection_count(&self) -> usize {
        self.buckets.iter().map(KBucket::len).sum()
    }

    /// Inserts `peer` into the bucket determined by its proximity to the
    /// owner. Returns `false` if the peer is the owner itself, the bucket is
    /// full, or the peer is already present.
    pub fn insert(&mut self, peer: NodeId, address: OverlayAddress) -> bool {
        if peer == self.owner {
            return false;
        }
        let prox = self.space.proximity(self.owner_address, address);
        // Proximity == bits would mean an address collision with the owner;
        // the topology builder guarantees distinct addresses.
        let Some(bucket) = self.buckets.get_mut(prox.bucket_index()) else {
            return false;
        };
        bucket.insert(peer, address)
    }

    /// Removes `peer` from whichever bucket holds it. Returns `false` if
    /// the peer was not present.
    pub fn remove(&mut self, peer: NodeId) -> bool {
        self.buckets.iter_mut().any(|bucket| bucket.remove(peer))
    }

    /// Empties every bucket (the owner went offline and drops all
    /// connections).
    pub fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
    }

    /// Iterates over every known peer.
    pub fn peers(&self) -> impl Iterator<Item = (NodeId, OverlayAddress)> + '_ {
        self.buckets.iter().flat_map(KBucket::iter)
    }

    /// Whether `peer` appears anywhere in the table.
    pub fn knows(&self, peer: NodeId) -> bool {
        self.buckets.iter().any(|b| b.contains(peer))
    }

    /// The known peer closest (XOR metric) to `target`, if any peer is
    /// strictly closer to the target than the owner itself.
    ///
    /// This is the forwarding-Kademlia next-hop choice: requests are relayed
    /// to "the closest possible node" (paper Fig. 1) and forwarding stops
    /// when no known peer improves on the current node.
    pub fn next_hop(&self, target: OverlayAddress) -> Option<(NodeId, OverlayAddress)> {
        let own_distance = self.space.distance(self.owner_address, target);
        let best = self
            .peers()
            .min_by_key(|(_, addr)| self.space.distance(*addr, target))?;
        if self.space.distance(best.1, target) < own_distance {
            Some(best)
        } else {
            None
        }
    }

    /// The `n` known peers closest (XOR metric) to `target`, nearest first.
    ///
    /// This is the classic Kademlia `FIND_NODE` answer shape. Forwarding
    /// Kademlia only ever uses the single best peer
    /// ([`RoutingTable::next_hop`]), but redundancy analyses — how many
    /// fallback relays a node has toward a region of the address space —
    /// need the full ranking.
    pub fn closest_peers(&self, target: OverlayAddress, n: usize) -> Vec<(NodeId, OverlayAddress)> {
        let mut peers: Vec<(NodeId, OverlayAddress)> = self.peers().collect();
        peers.sort_by_key(|(_, addr)| self.space.distance(*addr, target));
        peers.truncate(n);
        peers
    }

    /// The *neighborhood depth*: the shallowest bucket index from which all
    /// deeper buckets are not full (paper §III-A — the neighborhood is the
    /// proximity at which the node can no longer fill a bucket).
    pub fn neighborhood_depth(&self) -> u32 {
        let mut depth = self.buckets.len() as u32;
        for bucket in self.buckets.iter().rev() {
            if bucket.is_full() {
                break;
            }
            depth = bucket.index();
        }
        depth
    }

    /// Proximity order between the owner and `address`.
    pub fn proximity_to(&self, address: OverlayAddress) -> Proximity {
        self.space.proximity(self.owner_address, address)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space8() -> AddressSpace {
        AddressSpace::new(8).unwrap()
    }

    fn table(owner_raw: u64, k: usize) -> RoutingTable {
        let space = space8();
        let caps = vec![k; 8];
        RoutingTable::new(NodeId(0), space.address(owner_raw).unwrap(), space, &caps)
    }

    #[test]
    fn insert_routes_to_correct_bucket() {
        let mut t = table(0b0101_1011, 4);
        let space = space8();
        // Proximity 0 peer (first bit differs).
        assert!(t.insert(NodeId(1), space.address(0b1101_1011).unwrap()));
        assert_eq!(t.bucket(0).unwrap().len(), 1);
        // Proximity 4 peer.
        assert!(t.insert(NodeId(2), space.address(0b0101_0011).unwrap()));
        assert_eq!(t.bucket(4).unwrap().len(), 1);
        assert_eq!(t.connection_count(), 2);
    }

    #[test]
    fn rejects_self_insert() {
        let mut t = table(0b0101_1011, 4);
        let space = space8();
        assert!(!t.insert(NodeId(0), space.address(0b0000_0001).unwrap()));
        assert_eq!(t.connection_count(), 0);
    }

    #[test]
    fn bucket_capacity_enforced() {
        let mut t = table(0, 2);
        let space = space8();
        // All of these have first bit 1 => bucket 0.
        assert!(t.insert(NodeId(1), space.address(0b1000_0000).unwrap()));
        assert!(t.insert(NodeId(2), space.address(0b1000_0001).unwrap()));
        assert!(!t.insert(NodeId(3), space.address(0b1000_0010).unwrap()));
        assert_eq!(t.bucket(0).unwrap().len(), 2);
    }

    #[test]
    fn next_hop_picks_strictly_closer_peer() {
        let mut t = table(0b0000_0000, 4);
        let space = space8();
        let far = space.address(0b1000_0000).unwrap();
        let near = space.address(0b0111_0000).unwrap();
        t.insert(NodeId(1), far);
        t.insert(NodeId(2), near);
        // Target close to `near`.
        let target = space.address(0b0111_0001).unwrap();
        let (hop, _) = t.next_hop(target).unwrap();
        assert_eq!(hop, NodeId(2));
    }

    #[test]
    fn next_hop_none_when_owner_is_closest() {
        let mut t = table(0b0000_0001, 4);
        let space = space8();
        t.insert(NodeId(1), space.address(0b1111_1111).unwrap());
        // Target equals owner address: nobody can be closer.
        let target = space.address(0b0000_0001).unwrap();
        assert!(t.next_hop(target).is_none());
    }

    #[test]
    fn next_hop_none_on_empty_table() {
        let t = table(0, 4);
        let target = space8().address(0xFF).unwrap();
        assert!(t.next_hop(target).is_none());
    }

    #[test]
    fn neighborhood_depth_tracks_unfilled_tail() {
        let mut t = table(0b0000_0000, 1);
        let space = space8();
        // Fill buckets 0 and 1 (k = 1).
        t.insert(NodeId(1), space.address(0b1000_0000).unwrap());
        t.insert(NodeId(2), space.address(0b0100_0000).unwrap());
        // Buckets 2..8 empty => depth is 2.
        assert_eq!(t.neighborhood_depth(), 2);
    }

    #[test]
    fn closest_peers_ranks_by_distance() {
        let mut t = table(0b0000_0000, 4);
        let space = space8();
        let far = space.address(0b1111_0000).unwrap();
        let mid = space.address(0b0011_0000).unwrap();
        let near = space.address(0b0000_0111).unwrap();
        t.insert(NodeId(1), far);
        t.insert(NodeId(2), mid);
        t.insert(NodeId(3), near);
        let target = space.address(0b0000_0110).unwrap();
        let ranked = t.closest_peers(target, 8);
        let ids: Vec<usize> = ranked.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![3, 2, 1]);
        // Truncation keeps the nearest.
        let top1 = t.closest_peers(target, 1);
        assert_eq!(top1.len(), 1);
        assert_eq!(top1[0].0, NodeId(3));
        // Asking for more than known returns all.
        assert_eq!(t.closest_peers(target, 99).len(), 3);
    }

    #[test]
    fn remove_and_clear() {
        let mut t = table(0, 4);
        let space = space8();
        t.insert(NodeId(1), space.address(0xF0).unwrap());
        t.insert(NodeId(2), space.address(0x0F).unwrap());
        assert!(t.remove(NodeId(1)));
        assert!(!t.remove(NodeId(1)));
        assert!(!t.knows(NodeId(1)));
        assert_eq!(t.connection_count(), 1);
        t.clear();
        assert_eq!(t.connection_count(), 0);
    }

    #[test]
    fn knows_and_peers() {
        let mut t = table(0, 4);
        let space = space8();
        t.insert(NodeId(5), space.address(0xF0).unwrap());
        assert!(t.knows(NodeId(5)));
        assert!(!t.knows(NodeId(6)));
        assert_eq!(t.peers().count(), 1);
    }
}
