//! Arena-backed routing tables and the bucket-ordered next-hop search.
//!
//! Every routing table of a topology lives in one contiguous
//! structure-of-arrays arena ([`TableArena`]): peer ids and raw peer
//! addresses in two flat slices, with each `(node, bucket)` pair owning a
//! fixed `(offset, len)` slot range. Routing walks therefore touch
//! consecutive cache lines instead of chasing `nodes × bits` little heap
//! vectors, and building a 10⁵-node overlay performs a handful of
//! allocations instead of millions.
//!
//! The slot range reserved for bucket `b` of a node is
//! `min(capacity_b, candidates_b)`, where `candidates_b` counts *every*
//! node slot (live or offline) at proximity exactly `b` from the owner.
//! Bucket occupancy can never exceed that bound — entries are distinct
//! nodes at exactly that proximity, and inserts beyond the candidate
//! count are necessarily duplicates — so the layout computed at build
//! time stays valid across arbitrary [`add_node`] / [`remove_node`]
//! churn and the arena never reallocates.
//!
//! [`add_node`]: crate::topology::Topology::add_node
//! [`remove_node`]: crate::topology::Topology::remove_node

use crate::address::{AddressSpace, OverlayAddress, Proximity};
use crate::bucket::BucketRef;
use crate::topology::NodeId;

/// Per-topology storage for all routing tables.
///
/// See the module docs for the layout. All indices are dense: node `i`'s
/// bucket `b` is slot `i * bits + b`.
/// Slot range of one bucket: start offset into the entry arrays plus
/// current occupancy, packed into 8 bytes so a hop's bucket lookup costs
/// one cache line (the reserved size is the next span's offset minus this
/// one's, adjacent in memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BucketSpan {
    offset: u32,
    len: u32,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct TableArena {
    bits: u32,
    /// Peer node ids, all buckets of all nodes concatenated.
    ids: Vec<u32>,
    /// Raw peer addresses, parallel to `ids`.
    raws: Vec<u64>,
    /// Per `(node, bucket)` slot ranges, plus one zero-length sentinel
    /// whose offset is the total entry count: bucket `s` owns slots
    /// `spans[s].offset .. spans[s + 1].offset` and occupies the first
    /// `spans[s].len` of them.
    spans: Vec<BucketSpan>,
}

/// Freshly sampled tables for one contiguous owner range, produced by the
/// (possibly threaded) topology builder and concatenated into the arena
/// by [`TableArena::assemble`]. Initial buckets are exactly full
/// (`len == reserved`), so per-bucket lengths double as the reserved slot
/// sizes. Batching whole worker ranges into three vectors — instead of
/// three per owner — keeps build-time allocation counts flat in `n`.
#[derive(Debug)]
pub(crate) struct OwnerFill {
    /// Entries per bucket, `bits` values per owner, owners in range order.
    pub lens: Vec<u32>,
    /// Peer ids, owners and buckets concatenated shallow-to-deep.
    pub ids: Vec<u32>,
    /// Raw peer addresses, parallel to `ids`.
    pub raws: Vec<u64>,
}

impl OwnerFill {
    pub(crate) fn new() -> Self {
        Self {
            lens: Vec::new(),
            ids: Vec::new(),
            raws: Vec::new(),
        }
    }
}

impl TableArena {
    /// Concatenates range fills (in node order) into one arena. A
    /// single-range build (the serial path) moves its three vectors into
    /// place instead of copying — at 10⁵ nodes with `k = 20` that skips
    /// re-copying hundreds of megabytes.
    ///
    /// # Panics
    ///
    /// Panics if the total entry count overflows the `u32` offset space
    /// (≈ 4 × 10⁹ connections, far beyond simulated scales).
    pub(crate) fn assemble(bits: u32, mut fills: Vec<OwnerFill>) -> Self {
        fn spans_of(bucket_lens: impl Iterator<Item = u32>, buckets: usize) -> Vec<BucketSpan> {
            let mut spans = Vec::with_capacity(buckets + 1);
            let mut cursor = 0u64;
            for len in bucket_lens {
                assert!(u32::try_from(cursor).is_ok(), "arena offset overflow");
                spans.push(BucketSpan {
                    offset: cursor as u32,
                    len,
                });
                cursor += u64::from(len);
            }
            assert!(u32::try_from(cursor).is_ok(), "arena offset overflow");
            spans.push(BucketSpan {
                offset: cursor as u32,
                len: 0,
            });
            spans
        }

        if fills.len() == 1 {
            let fill = fills.pop().expect("one fill");
            debug_assert_eq!(fill.lens.len() % bits as usize, 0);
            let spans = spans_of(fill.lens.iter().copied(), fill.lens.len());
            debug_assert_eq!(
                spans.last().expect("never empty").offset as usize,
                fill.ids.len()
            );
            return Self {
                bits,
                ids: fill.ids,
                raws: fill.raws,
                spans,
            };
        }

        let buckets: usize = fills.iter().map(|f| f.lens.len()).sum();
        let total: usize = fills.iter().map(|f| f.ids.len()).sum();
        assert!(u32::try_from(total).is_ok(), "arena offset overflow");
        let mut ids = Vec::with_capacity(total);
        let mut raws = Vec::with_capacity(total);
        for fill in &fills {
            debug_assert_eq!(fill.lens.len() % bits as usize, 0);
            ids.extend_from_slice(&fill.ids);
            raws.extend_from_slice(&fill.raws);
        }
        let spans = spans_of(fills.iter().flat_map(|f| f.lens.iter().copied()), buckets);
        debug_assert_eq!(spans.last().expect("never empty").offset as usize, total);
        Self {
            bits,
            ids,
            raws,
            spans,
        }
    }

    /// An arena for a single table whose bucket `b` reserves
    /// `reserved[b]` slots — unit-test and doctest harness.
    #[cfg(test)]
    pub(crate) fn single(bits: u32, reserved: &[u32]) -> Self {
        assert_eq!(reserved.len(), bits as usize);
        let total: u32 = reserved.iter().sum();
        let mut spans = Vec::with_capacity(reserved.len() + 1);
        let mut cursor = 0u32;
        for &r in reserved {
            spans.push(BucketSpan {
                offset: cursor,
                len: 0,
            });
            cursor += r;
        }
        spans.push(BucketSpan {
            offset: cursor,
            len: 0,
        });
        Self {
            bits,
            ids: vec![0; total as usize],
            raws: vec![0; total as usize],
            spans,
        }
    }

    #[inline]
    fn slot(&self, node: usize, bucket: usize) -> usize {
        node * self.bits as usize + bucket
    }

    #[inline]
    pub(crate) fn bucket_len(&self, node: usize, bucket: usize) -> usize {
        self.spans[self.slot(node, bucket)].len as usize
    }

    /// Slots reserved for a bucket (its maximum possible occupancy).
    #[inline]
    pub(crate) fn bucket_reserved(&self, node: usize, bucket: usize) -> usize {
        let slot = self.slot(node, bucket);
        (self.spans[slot + 1].offset - self.spans[slot].offset) as usize
    }

    /// The occupied `(ids, raws)` slices of one bucket.
    #[inline]
    pub(crate) fn bucket_entries(&self, node: usize, bucket: usize) -> (&[u32], &[u64]) {
        let span = self.spans[self.slot(node, bucket)];
        let start = span.offset as usize;
        let end = start + span.len as usize;
        (&self.ids[start..end], &self.raws[start..end])
    }

    /// Whether `peer` occupies the bucket.
    pub(crate) fn contains(&self, node: usize, bucket: usize, peer: u32) -> bool {
        self.bucket_entries(node, bucket).0.contains(&peer)
    }

    /// Appends `peer` to the bucket. Returns `false` (no insert) when the
    /// bucket's reserved slots are exhausted or the peer is present — the
    /// same acceptance rule as a capacity-checked k-bucket, because
    /// reserved slots are `min(capacity, candidates)` and an insert past
    /// the candidate count is always a duplicate.
    pub(crate) fn insert(&mut self, node: usize, bucket: usize, peer: u32, raw: u64) -> bool {
        let slot = self.slot(node, bucket);
        let span = self.spans[slot];
        let start = span.offset as usize;
        let len = span.len as usize;
        let reserved = (self.spans[slot + 1].offset - span.offset) as usize;
        if len >= reserved || self.ids[start..start + len].contains(&peer) {
            return false;
        }
        self.ids[start + len] = peer;
        self.raws[start + len] = raw;
        self.spans[slot].len += 1;
        true
    }

    /// Removes `peer` from the bucket, preserving the order of the
    /// remaining entries. Returns `false` if the peer was not present.
    pub(crate) fn remove(&mut self, node: usize, bucket: usize, peer: u32) -> bool {
        let slot = self.slot(node, bucket);
        let span = self.spans[slot];
        let start = span.offset as usize;
        let len = span.len as usize;
        let Some(pos) = self.ids[start..start + len]
            .iter()
            .position(|&id| id == peer)
        else {
            return false;
        };
        self.ids
            .copy_within(start + pos + 1..start + len, start + pos);
        self.raws
            .copy_within(start + pos + 1..start + len, start + pos);
        self.spans[slot].len -= 1;
        true
    }

    /// Empties every bucket of `node` (the owner went offline).
    pub(crate) fn clear_node(&mut self, node: usize) {
        let base = node * self.bits as usize;
        for span in &mut self.spans[base..base + self.bits as usize] {
            span.len = 0;
        }
    }

    /// Total entries across all of `node`'s buckets.
    pub(crate) fn connection_count(&self, node: usize) -> usize {
        let base = node * self.bits as usize;
        self.spans[base..base + self.bits as usize]
            .iter()
            .map(|span| span.len as usize)
            .sum()
    }

    /// Total entries across the whole arena.
    pub(crate) fn total_connections(&self) -> usize {
        // The sentinel's len is always zero, so including it is harmless.
        self.spans.iter().map(|span| span.len as usize).sum()
    }

    /// `node`'s peer ids, shallowest bucket first, insertion order within
    /// a bucket.
    pub(crate) fn node_peers<'a>(&'a self, node: usize) -> impl Iterator<Item = u32> + 'a {
        let bits = self.bits as usize;
        (0..bits).flat_map(move |b| self.bucket_entries(node, b).0.iter().copied())
    }

    /// The known peer of `node` strictly closest (XOR) to `target_raw`,
    /// if any peer beats the owner's own distance.
    ///
    /// Bucket-ordered search. With `p` the proximity order between owner
    /// and target:
    ///
    /// * every peer in bucket `p` shares at least `p + 1` target-prefix
    ///   bits, so it strictly beats the owner and every peer of every
    ///   other bucket — one bucket scan answers the common case;
    /// * peers in buckets shallower than `p` are strictly farther than
    ///   the owner and are never scanned;
    /// * peers in bucket `b > p` inherit the top `b` bits of the owner's
    ///   own distance and flip bit `b`, which yields a per-bucket lower
    ///   bound; buckets that cannot beat the best distance found are
    ///   skipped, and the walk stops as soon as the (monotone) shared
    ///   prefix alone exceeds it.
    ///
    /// Worst case `O(k + bits)` against the former all-bucket scan; XOR
    /// distances to distinct addresses are unique, so the result is
    /// exactly the linear scan's.
    pub(crate) fn next_hop(
        &self,
        node: usize,
        owner_raw: u64,
        target_raw: u64,
    ) -> Option<(u32, u64)> {
        let bits = self.bits;
        let own = owner_raw ^ target_raw;
        if own == 0 {
            // The owner sits on the target address; nothing is closer.
            return None;
        }
        let prox = (own << (64 - bits)).leading_zeros() as usize;
        let base = node * bits as usize;

        let span = self.spans[base + prox];
        if span.len > 0 {
            let start = span.offset as usize;
            let raws = &self.raws[start..start + span.len as usize];
            let mut best_i = 0usize;
            let mut best_d = raws[0] ^ target_raw;
            for (i, &raw) in raws.iter().enumerate().skip(1) {
                let d = raw ^ target_raw;
                if d < best_d {
                    best_d = d;
                    best_i = i;
                }
            }
            return Some((self.ids[start + best_i], raws[best_i]));
        }

        let mut best_d = own;
        let mut best: Option<usize> = None;
        for bucket in prox + 1..bits as usize {
            let span = self.spans[base + bucket];
            // `shift` is the weight position of bit `bucket`; safe because
            // `bucket >= 1` keeps it under the space width.
            let shift = bits - 1 - bucket as u32;
            let prefix = (own >> (shift + 1)) << (shift + 1);
            if prefix >= best_d {
                // Deeper buckets share ever longer prefixes of `own`, so
                // no remaining bucket can beat the best distance.
                break;
            }
            if span.len == 0 {
                continue;
            }
            // Entries flip bit `bucket` of `own`; zeros below bound them.
            let floor = prefix | (!own >> shift & 1) << shift;
            if floor >= best_d {
                continue;
            }
            let start = span.offset as usize;
            for i in start..start + span.len as usize {
                let d = self.raws[i] ^ target_raw;
                if d < best_d {
                    best_d = d;
                    best = Some(i);
                }
            }
        }
        best.map(|i| (self.ids[i], self.raws[i]))
    }
}

/// A read view of one node's routing table: `bits` buckets of capacity
/// `k` (possibly overridden per bucket), bucket `i` holding peers at
/// proximity order exactly `i`.
///
/// Obtained from [`Topology::table`]; borrows the topology's shared
/// arena. Two views compare equal when owner, address space,
/// capacities and every bucket's entries agree.
///
/// [`Topology::table`]: crate::topology::Topology::table
#[derive(Debug, Clone, Copy)]
pub struct TableRef<'a> {
    owner: NodeId,
    owner_address: OverlayAddress,
    space: AddressSpace,
    arena: &'a TableArena,
    capacities: &'a [usize],
}

impl<'a> TableRef<'a> {
    pub(crate) fn new(
        owner: NodeId,
        owner_address: OverlayAddress,
        space: AddressSpace,
        arena: &'a TableArena,
        capacities: &'a [usize],
    ) -> Self {
        debug_assert_eq!(capacities.len(), space.bits() as usize);
        Self {
            owner,
            owner_address,
            space,
            arena,
            capacities,
        }
    }

    /// The node owning this table.
    #[inline]
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// The owner's overlay address.
    #[inline]
    pub fn owner_address(&self) -> OverlayAddress {
        self.owner_address
    }

    /// The address space this table lives in.
    #[inline]
    pub fn space(&self) -> AddressSpace {
        self.space
    }

    /// Number of buckets (= address-space bit-width).
    #[inline]
    pub fn bucket_count(&self) -> usize {
        self.space.bits() as usize
    }

    /// Access a bucket by index.
    pub fn bucket(&self, index: usize) -> Option<BucketRef<'a>> {
        (index < self.bucket_count()).then(|| self.bucket_ref(index))
    }

    fn bucket_ref(&self, index: usize) -> BucketRef<'a> {
        let (ids, raws) = self.arena.bucket_entries(self.owner.0, index);
        BucketRef::new(index as u32, self.capacities[index], self.space, ids, raws)
    }

    /// Iterate over all buckets, shallowest (bucket 0) first. Takes the
    /// (copyable) view by value so the iterator can outlive it.
    pub fn buckets(self) -> impl Iterator<Item = BucketRef<'a>> {
        (0..self.bucket_count()).map(move |b| self.bucket_ref(b))
    }

    /// Total number of peers across all buckets (the node's connection
    /// count — the §V overhead discussion charges per open connection).
    pub fn connection_count(&self) -> usize {
        self.arena.connection_count(self.owner.0)
    }

    /// Iterates over every known peer, shallowest bucket first.
    pub fn peers(&self) -> impl Iterator<Item = (NodeId, OverlayAddress)> + 'a {
        let bits = self.space.bits();
        let arena = self.arena;
        let node = self.owner.0;
        (0..bits as usize).flat_map(move |b| {
            let (ids, raws) = arena.bucket_entries(node, b);
            ids.iter().zip(raws).map(move |(&id, &raw)| {
                (
                    NodeId(id as usize),
                    OverlayAddress::from_raw_unchecked(raw, bits),
                )
            })
        })
    }

    /// Whether `peer` appears anywhere in the table.
    pub fn knows(&self, peer: NodeId) -> bool {
        let bits = self.space.bits() as usize;
        (0..bits).any(|b| self.arena.contains(self.owner.0, b, peer.0 as u32))
    }

    /// The known peer closest (XOR metric) to `target`, if any peer is
    /// strictly closer to the target than the owner itself.
    ///
    /// This is the forwarding-Kademlia next-hop choice: requests are
    /// relayed to "the closest possible node" (paper Fig. 1) and
    /// forwarding stops when no known peer improves on the current node.
    /// See the module docs for the bucket-ordered search.
    pub fn next_hop(&self, target: OverlayAddress) -> Option<(NodeId, OverlayAddress)> {
        self.arena
            .next_hop(self.owner.0, self.owner_address.raw(), target.raw())
            .map(|(id, raw)| {
                (
                    NodeId(id as usize),
                    OverlayAddress::from_raw_unchecked(raw, self.space.bits()),
                )
            })
    }

    /// The `n` known peers closest (XOR metric) to `target`, nearest
    /// first.
    ///
    /// This is the classic Kademlia `FIND_NODE` answer shape. Forwarding
    /// Kademlia only ever uses the single best peer
    /// ([`TableRef::next_hop`]), but redundancy analyses — how many
    /// fallback relays a node has toward a region of the address space —
    /// need the ranking. Selection is partial: only the top `n` entries
    /// are ever sorted, so small-`n` queries on big tables cost
    /// `O(peers + n log n)` rather than a full sort.
    pub fn closest_peers(&self, target: OverlayAddress, n: usize) -> Vec<(NodeId, OverlayAddress)> {
        if n == 0 {
            return Vec::new();
        }
        let mut peers: Vec<(NodeId, OverlayAddress)> = self.peers().collect();
        let key = |entry: &(NodeId, OverlayAddress)| entry.1.raw() ^ target.raw();
        if peers.len() > n {
            peers.select_nth_unstable_by_key(n, key);
            peers.truncate(n);
        }
        // Unique XOR distances make the order total, so the partial
        // selection reproduces the full sort's prefix exactly.
        peers.sort_unstable_by_key(key);
        peers
    }

    /// The *neighborhood depth*: the shallowest bucket index from which
    /// all deeper buckets are not full (paper §III-A — the neighborhood is
    /// the proximity at which the node can no longer fill a bucket).
    pub fn neighborhood_depth(&self) -> u32 {
        let bits = self.bucket_count();
        let mut depth = bits as u32;
        for bucket in (0..bits).rev() {
            if self.arena.bucket_len(self.owner.0, bucket) >= self.capacities[bucket] {
                break;
            }
            depth = bucket as u32;
        }
        depth
    }

    /// Proximity order between the owner and `address`.
    pub fn proximity_to(&self, address: OverlayAddress) -> Proximity {
        self.space.proximity(self.owner_address, address)
    }
}

impl PartialEq for TableRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.owner == other.owner
            && self.owner_address == other.owner_address
            && self.space == other.space
            && self.capacities == other.capacities
            && (0..self.bucket_count()).all(|b| {
                self.arena.bucket_entries(self.owner.0, b)
                    == other.arena.bucket_entries(other.owner.0, b)
            })
    }
}

impl Eq for TableRef<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn space8() -> AddressSpace {
        AddressSpace::new(8).unwrap()
    }

    /// A single-table harness with `k` slots reserved per bucket.
    struct Harness {
        arena: TableArena,
        owner_address: OverlayAddress,
        space: AddressSpace,
        capacities: Vec<usize>,
    }

    impl Harness {
        fn new(owner_raw: u64, k: usize) -> Self {
            let space = space8();
            Self {
                arena: TableArena::single(8, &[k as u32; 8]),
                owner_address: space.address(owner_raw).unwrap(),
                space,
                capacities: vec![k; 8],
            }
        }

        fn insert(&mut self, peer: NodeId, address: OverlayAddress) -> bool {
            if peer == NodeId(0) {
                return false;
            }
            let bucket = self
                .space
                .proximity(self.owner_address, address)
                .bucket_index();
            self.arena.insert(0, bucket, peer.0 as u32, address.raw())
        }

        fn table(&self) -> TableRef<'_> {
            TableRef::new(
                NodeId(0),
                self.owner_address,
                self.space,
                &self.arena,
                &self.capacities,
            )
        }

        /// Linear-scan reference for the bucket-ordered search.
        fn next_hop_reference(&self, target: OverlayAddress) -> Option<(NodeId, OverlayAddress)> {
            let own = self.space.distance(self.owner_address, target);
            let best = self
                .table()
                .peers()
                .min_by_key(|(_, addr)| self.space.distance(*addr, target))?;
            (self.space.distance(best.1, target) < own).then_some(best)
        }
    }

    #[test]
    fn insert_routes_to_correct_bucket() {
        let mut h = Harness::new(0b0101_1011, 4);
        let space = space8();
        // Proximity 0 peer (first bit differs).
        assert!(h.insert(NodeId(1), space.address(0b1101_1011).unwrap()));
        assert_eq!(h.table().bucket(0).unwrap().len(), 1);
        // Proximity 4 peer.
        assert!(h.insert(NodeId(2), space.address(0b0101_0011).unwrap()));
        assert_eq!(h.table().bucket(4).unwrap().len(), 1);
        assert_eq!(h.table().connection_count(), 2);
    }

    #[test]
    fn rejects_self_insert() {
        let mut h = Harness::new(0b0101_1011, 4);
        let space = space8();
        assert!(!h.insert(NodeId(0), space.address(0b0000_0001).unwrap()));
        assert_eq!(h.table().connection_count(), 0);
    }

    #[test]
    fn reserved_slots_enforced() {
        let mut h = Harness::new(0, 2);
        let space = space8();
        // All of these have first bit 1 => bucket 0.
        assert!(h.insert(NodeId(1), space.address(0b1000_0000).unwrap()));
        assert!(h.insert(NodeId(2), space.address(0b1000_0001).unwrap()));
        assert!(!h.insert(NodeId(3), space.address(0b1000_0010).unwrap()));
        assert_eq!(h.table().bucket(0).unwrap().len(), 2);
        // Duplicates are rejected below capacity too.
        assert!(!h.insert(NodeId(1), space.address(0b1000_0000).unwrap()));
    }

    #[test]
    fn next_hop_picks_strictly_closer_peer() {
        let mut h = Harness::new(0b0000_0000, 4);
        let space = space8();
        let far = space.address(0b1000_0000).unwrap();
        let near = space.address(0b0111_0000).unwrap();
        h.insert(NodeId(1), far);
        h.insert(NodeId(2), near);
        // Target close to `near`.
        let target = space.address(0b0111_0001).unwrap();
        let (hop, _) = h.table().next_hop(target).unwrap();
        assert_eq!(hop, NodeId(2));
    }

    #[test]
    fn next_hop_none_when_owner_is_closest() {
        let mut h = Harness::new(0b0000_0001, 4);
        let space = space8();
        h.insert(NodeId(1), space.address(0b1111_1111).unwrap());
        // Target equals owner address: nobody can be closer.
        let target = space.address(0b0000_0001).unwrap();
        assert!(h.table().next_hop(target).is_none());
    }

    #[test]
    fn next_hop_none_on_empty_table() {
        let h = Harness::new(0, 4);
        let target = space8().address(0xFF).unwrap();
        assert!(h.table().next_hop(target).is_none());
    }

    #[test]
    fn next_hop_searches_deeper_buckets_when_proximity_bucket_is_empty() {
        // Owner 0x00, target 0x80 => proximity 0. Leave bucket 0 empty and
        // park peers in deeper buckets; the owner itself must win because
        // deep peers share its (wrong) first bit... unless one of them is
        // closer to the target on the low-order bits.
        let mut h = Harness::new(0b0000_0000, 4);
        let space = space8();
        h.insert(NodeId(1), space.address(0b0100_0000).unwrap()); // bucket 1
        h.insert(NodeId(2), space.address(0b0010_0000).unwrap()); // bucket 2
        let target = space.address(0b1000_0000).unwrap();
        // d(owner) = 0x80, d(n1) = 0xC0, d(n2) = 0xA0: owner is closest.
        assert!(h.table().next_hop(target).is_none());

        // Now a target where a deeper peer wins: target 0b0110_0000.
        // d(owner) = 0x60, d(n1) = 0x20, d(n2) = 0x40.
        let target = space.address(0b0110_0000).unwrap();
        let (hop, _) = h.table().next_hop(target).unwrap();
        assert_eq!(hop, NodeId(1));
    }

    #[test]
    fn next_hop_matches_linear_scan_exhaustively() {
        // Dense 8-bit harness: every possible target against a table with
        // peers sprinkled across all buckets.
        let mut h = Harness::new(0b0101_1011, 2);
        let space = space8();
        for (i, raw) in [
            0b1101_1011u64,
            0b1000_0000,
            0b0001_0000,
            0b0110_0000,
            0b0100_1111,
            0b0101_0000,
            0b0101_1100,
            0b0101_1010,
            0b0011_0011,
            0b0101_1111,
        ]
        .into_iter()
        .enumerate()
        {
            h.insert(NodeId(i + 1), space.address(raw).unwrap());
        }
        for raw in 0..=0xFFu64 {
            let target = space.address(raw).unwrap();
            assert_eq!(
                h.table().next_hop(target),
                h.next_hop_reference(target),
                "target {raw:#010b}"
            );
        }
    }

    #[test]
    fn neighborhood_depth_tracks_unfilled_tail() {
        let mut h = Harness::new(0b0000_0000, 1);
        let space = space8();
        // Fill buckets 0 and 1 (k = 1).
        h.insert(NodeId(1), space.address(0b1000_0000).unwrap());
        h.insert(NodeId(2), space.address(0b0100_0000).unwrap());
        // Buckets 2..8 empty => depth is 2.
        assert_eq!(h.table().neighborhood_depth(), 2);
    }

    #[test]
    fn closest_peers_ranks_by_distance() {
        let mut h = Harness::new(0b0000_0000, 4);
        let space = space8();
        let far = space.address(0b1111_0000).unwrap();
        let mid = space.address(0b0011_0000).unwrap();
        let near = space.address(0b0000_0111).unwrap();
        h.insert(NodeId(1), far);
        h.insert(NodeId(2), mid);
        h.insert(NodeId(3), near);
        let target = space.address(0b0000_0110).unwrap();
        let t = h.table();
        let ranked = t.closest_peers(target, 8);
        let ids: Vec<usize> = ranked.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![3, 2, 1]);
        // Truncation keeps the nearest.
        let top1 = t.closest_peers(target, 1);
        assert_eq!(top1.len(), 1);
        assert_eq!(top1[0].0, NodeId(3));
        // Asking for more than known returns all; zero returns none.
        assert_eq!(t.closest_peers(target, 99).len(), 3);
        assert!(t.closest_peers(target, 0).is_empty());
    }

    #[test]
    fn remove_and_clear() {
        let mut h = Harness::new(0, 4);
        let space = space8();
        let a = space.address(0xF0).unwrap();
        let b = space.address(0x0F).unwrap();
        h.insert(NodeId(1), a);
        h.insert(NodeId(2), b);
        let bucket_a = h.space.proximity(h.owner_address, a).bucket_index();
        assert!(h.arena.remove(0, bucket_a, 1));
        assert!(!h.arena.remove(0, bucket_a, 1));
        assert!(!h.table().knows(NodeId(1)));
        assert_eq!(h.table().connection_count(), 1);
        h.arena.clear_node(0);
        assert_eq!(h.table().connection_count(), 0);
    }

    #[test]
    fn remove_preserves_order_of_rest() {
        let mut h = Harness::new(0, 8);
        let space = space8();
        // Five peers in bucket 0 (first bit set).
        for i in 1..=5u64 {
            h.insert(NodeId(i as usize), space.address(0x80 | i).unwrap());
        }
        assert!(h.arena.remove(0, 0, 2));
        let ids: Vec<usize> = h.table().peers().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![1, 3, 4, 5]);
    }

    #[test]
    fn knows_and_peers() {
        let mut h = Harness::new(0, 4);
        let space = space8();
        h.insert(NodeId(5), space.address(0xF0).unwrap());
        let t = h.table();
        assert!(t.knows(NodeId(5)));
        assert!(!t.knows(NodeId(6)));
        assert_eq!(t.peers().count(), 1);
    }

    #[test]
    fn table_refs_compare_by_content() {
        let mut a = Harness::new(0b0101_1011, 4);
        let mut b = Harness::new(0b0101_1011, 4);
        let space = space8();
        let peer = space.address(0b1101_1011).unwrap();
        a.insert(NodeId(1), peer);
        assert_ne!(a.table(), b.table());
        b.insert(NodeId(1), peer);
        assert_eq!(a.table(), b.table());
    }
}
