//! Overlay addresses and the Kademlia XOR metric.
//!
//! Both nodes and content chunks live in the same address space (paper
//! §III-A: "All content in Swarm [...] are addressed on the same address
//! space as nodes"). Proximity between two addresses is the length of their
//! shared most-significant-bit prefix; distance is the XOR of the two
//! addresses interpreted as an integer.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::KademliaError;

/// A bounded address space of `bits` bits.
///
/// The paper simulates a 16-bit space (addresses in `0..2^16`); Swarm proper
/// uses 256-bit addresses. Widths up to 64 bits are supported, which is ample
/// for laptop-scale simulation while keeping addresses `Copy`.
///
/// ```
/// use fairswap_kademlia::AddressSpace;
///
/// let space = AddressSpace::new(16)?;
/// assert_eq!(space.capacity(), 65_536);
/// # Ok::<(), fairswap_kademlia::KademliaError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AddressSpace {
    bits: u32,
}

impl AddressSpace {
    /// Creates an address space of `bits` bits.
    ///
    /// # Errors
    ///
    /// Returns [`KademliaError::InvalidBits`] unless `1 <= bits <= 64`.
    pub fn new(bits: u32) -> Result<Self, KademliaError> {
        if bits == 0 || bits > 64 {
            return Err(KademliaError::InvalidBits { bits });
        }
        Ok(Self { bits })
    }

    /// The bit-width of this space.
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of distinct addresses, saturating at `u128::MAX` — for 64-bit
    /// spaces the true capacity `2^64` still fits in a `u128`.
    #[inline]
    pub fn capacity(&self) -> u128 {
        1u128 << self.bits
    }

    /// The largest raw value representable in this space.
    #[inline]
    pub fn max_raw(&self) -> u64 {
        if self.bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.bits) - 1
        }
    }

    /// Wraps a raw integer into an [`OverlayAddress`].
    ///
    /// # Errors
    ///
    /// Returns [`KademliaError::AddressOutOfRange`] if `raw` does not fit in
    /// the space.
    pub fn address(&self, raw: u64) -> Result<OverlayAddress, KademliaError> {
        if raw > self.max_raw() {
            return Err(KademliaError::AddressOutOfRange {
                raw,
                bits: self.bits,
            });
        }
        Ok(OverlayAddress {
            raw,
            bits: self.bits,
        })
    }

    /// Wraps a raw integer, truncating it into range by masking the high bits.
    ///
    /// Useful when deriving addresses from hashes or RNG output.
    pub fn address_truncated(&self, raw: u64) -> OverlayAddress {
        OverlayAddress {
            raw: raw & self.max_raw(),
            bits: self.bits,
        }
    }

    /// XOR distance between two addresses of this space.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the addresses belong to a different space.
    #[inline]
    pub fn distance(&self, a: OverlayAddress, b: OverlayAddress) -> Distance {
        debug_assert_eq!(a.bits, self.bits);
        debug_assert_eq!(b.bits, self.bits);
        Distance(a.raw ^ b.raw)
    }

    /// Proximity order: the number of shared most-significant prefix bits.
    ///
    /// Two equal addresses have proximity `bits` (the maximum); addresses
    /// differing in the first bit have proximity 0 (paper §III-A: "The
    /// furthest away nodes are those nodes with a different first bit").
    #[inline]
    pub fn proximity(&self, a: OverlayAddress, b: OverlayAddress) -> Proximity {
        debug_assert_eq!(a.bits, self.bits);
        debug_assert_eq!(b.bits, self.bits);
        let x = a.raw ^ b.raw;
        if x == 0 {
            return Proximity(self.bits);
        }
        // Shift the space's MSB up to bit 63 so leading_zeros counts only
        // bits that are inside the space.
        let shifted = x << (64 - self.bits);
        Proximity(shifted.leading_zeros())
    }
}

/// An address in an [`AddressSpace`].
///
/// Addresses carry their bit-width so that cross-space comparisons are caught
/// in debug builds. They order by raw value; *metric* comparisons go through
/// [`AddressSpace::distance`] / [`AddressSpace::proximity`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OverlayAddress {
    raw: u64,
    bits: u32,
}

impl OverlayAddress {
    /// Rewraps a raw value known to be in range — the arena stores bare
    /// `u64`s and reconstructs addresses on read without re-validation.
    #[inline]
    pub(crate) fn from_raw_unchecked(raw: u64, bits: u32) -> Self {
        debug_assert!((1..=64).contains(&bits));
        debug_assert!(bits == 64 || raw < (1u64 << bits));
        Self { raw, bits }
    }

    /// The raw integer value.
    #[inline]
    pub fn raw(&self) -> u64 {
        self.raw
    }

    /// The bit-width of the space this address belongs to.
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// XOR distance to `other`.
    #[inline]
    pub fn distance(&self, other: OverlayAddress) -> Distance {
        debug_assert_eq!(self.bits, other.bits);
        Distance(self.raw ^ other.raw)
    }

    /// Proximity order (shared MSB prefix length) with `other`.
    #[inline]
    pub fn proximity(&self, other: OverlayAddress) -> Proximity {
        debug_assert_eq!(self.bits, other.bits);
        let x = self.raw ^ other.raw;
        if x == 0 {
            return Proximity(self.bits);
        }
        Proximity((x << (64 - self.bits)).leading_zeros())
    }

    /// The value of bit `index`, counting from the most significant bit of
    /// the space (bit 0 is the MSB).
    ///
    /// # Panics
    ///
    /// Panics if `index >= bits`.
    #[inline]
    pub fn bit(&self, index: u32) -> bool {
        assert!(index < self.bits, "bit index {index} out of range");
        (self.raw >> (self.bits - 1 - index)) & 1 == 1
    }
}

impl fmt::Display for OverlayAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = (self.bits as usize).div_ceil(4);
        write!(f, "{:0width$x}", self.raw, width = width)
    }
}

impl fmt::Binary for OverlayAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:0width$b}", self.raw, width = self.bits as usize)
    }
}

impl fmt::LowerHex for OverlayAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.raw, f)
    }
}

impl fmt::UpperHex for OverlayAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.raw, f)
    }
}

/// XOR distance between two overlay addresses.
///
/// Distances are totally ordered; smaller means closer. The XOR metric is a
/// genuine metric and additionally satisfies the *unique closest point*
/// property that Kademlia relies on: for any target and any distance there is
/// at most one address at that distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Distance(pub u64);

impl Distance {
    /// Zero distance (an address to itself).
    pub const ZERO: Distance = Distance(0);

    /// The raw XOR value.
    #[inline]
    pub fn raw(&self) -> u64 {
        self.0
    }

    /// Whether this is the zero distance.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Distance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Proximity order: length of the shared most-significant-bit prefix.
///
/// Larger proximity means closer. Proximity `bits` means equality; proximity
/// 0 means the first bit already differs. The proximity order of a peer also
/// names the routing-table bucket it falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Proximity(pub u32);

impl Proximity {
    /// The raw prefix length.
    #[inline]
    pub fn order(&self) -> u32 {
        self.0
    }

    /// Bucket index this proximity maps to (identical to the order).
    #[inline]
    pub fn bucket_index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Proximity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space16() -> AddressSpace {
        AddressSpace::new(16).unwrap()
    }

    #[test]
    fn rejects_invalid_bit_widths() {
        assert!(AddressSpace::new(0).is_err());
        assert!(AddressSpace::new(65).is_err());
        assert!(AddressSpace::new(1).is_ok());
        assert!(AddressSpace::new(64).is_ok());
    }

    #[test]
    fn capacity_and_max_raw() {
        let s = space16();
        assert_eq!(s.capacity(), 65_536);
        assert_eq!(s.max_raw(), 0xFFFF);
        let s64 = AddressSpace::new(64).unwrap();
        assert_eq!(s64.max_raw(), u64::MAX);
        assert_eq!(s64.capacity(), 1u128 << 64);
    }

    #[test]
    fn address_range_checked() {
        let s = space16();
        assert!(s.address(0xFFFF).is_ok());
        assert!(matches!(
            s.address(0x1_0000),
            Err(KademliaError::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn address_truncated_masks_high_bits() {
        let s = space16();
        let a = s.address_truncated(0xABCD_1234);
        assert_eq!(a.raw(), 0x1234);
    }

    #[test]
    fn distance_is_xor() {
        let s = space16();
        let a = s.address(0b1010).unwrap();
        let b = s.address(0b0110).unwrap();
        assert_eq!(s.distance(a, b), Distance(0b1100));
        assert_eq!(a.distance(b), Distance(0b1100));
        assert!(s.distance(a, a).is_zero());
    }

    #[test]
    fn proximity_counts_shared_msb_prefix() {
        let s = AddressSpace::new(8).unwrap();
        let a = s.address(0b0101_1011).unwrap();
        // Same first 4 bits, differs at bit 4.
        let b = s.address(0b0101_0011).unwrap();
        assert_eq!(s.proximity(a, b), Proximity(4));
        // Different first bit.
        let c = s.address(0b1101_1011).unwrap();
        assert_eq!(s.proximity(a, c), Proximity(0));
        // Equal addresses saturate at the full width.
        assert_eq!(s.proximity(a, a), Proximity(8));
    }

    #[test]
    fn proximity_matches_paper_figure3_example() {
        // Fig. 3 of the paper: node 0b01011011 groups peers by shared prefix.
        let s = AddressSpace::new(8).unwrap();
        let node = s.address(0b0101_1011).unwrap();
        let cases = [
            (0b1010_0010u64, 0u32), // bucket 0: first bit differs
            (0b0010_0010, 1),       // bucket 1
            (0b0110_1010, 2),       // bucket 2
            (0b0100_1010, 3),       // bucket 3
            (0b0101_0100, 4),       // bucket 4
            (0b0101_1111, 5),       // bucket 5
            (0b0101_1000, 6),       // bucket 6
            (0b0101_1010, 7),       // bucket 7
        ];
        for (raw, order) in cases {
            let peer = s.address(raw).unwrap();
            assert_eq!(s.proximity(node, peer), Proximity(order), "peer {raw:08b}");
        }
    }

    #[test]
    fn bit_indexing_is_msb_first() {
        let s = AddressSpace::new(8).unwrap();
        let a = s.address(0b1000_0001).unwrap();
        assert!(a.bit(0));
        assert!(!a.bit(1));
        assert!(a.bit(7));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_indexing_panics_out_of_range() {
        let s = AddressSpace::new(8).unwrap();
        let a = s.address(1).unwrap();
        let _ = a.bit(8);
    }

    #[test]
    fn display_formats() {
        let s = space16();
        let a = s.address(0x00AB).unwrap();
        assert_eq!(a.to_string(), "00ab");
        assert_eq!(format!("{a:b}"), "0000000010101011");
        assert_eq!(format!("{a:x}"), "ab");
        assert_eq!(format!("{a:X}"), "AB");
    }

    #[test]
    fn full_width_space_proximity() {
        let s = AddressSpace::new(64).unwrap();
        let a = s.address(0).unwrap();
        let b = s.address(1).unwrap();
        assert_eq!(s.proximity(a, b), Proximity(63));
        assert_eq!(s.proximity(a, a), Proximity(64));
        let c = s.address(u64::MAX).unwrap();
        assert_eq!(s.proximity(a, c), Proximity(0));
    }

    #[test]
    fn closer_in_proximity_iff_smaller_distance_prefix() {
        // Higher proximity implies strictly smaller XOR distance.
        let s = space16();
        let t = s.address(0x00FF).unwrap();
        let near = s.address(0x00FE).unwrap(); // proximity 15
        let far = s.address(0x40FF).unwrap(); // proximity 1
        assert!(s.proximity(t, near) > s.proximity(t, far));
        assert!(s.distance(t, near) < s.distance(t, far));
    }
}
