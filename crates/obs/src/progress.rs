//! The live progress sink.
//!
//! Progress is presentation, not data: it goes to stderr, never into a CSV
//! or trace artifact, so routing it through one sink lets the CLI silence
//! it (`--no-progress`) and keeps CI logs free of carriage-return spam —
//! the meter auto-disables when stderr is not a terminal.

use std::io::IsTerminal;
use std::sync::atomic::{AtomicU64, Ordering};

/// Renders a single in-place `done/total` line on stderr.
///
/// Safe to call from several worker threads at once: the percentage gate is
/// an atomic max, so the line only ever moves forward even when updates
/// race.
#[derive(Debug)]
pub struct ProgressMeter {
    live: bool,
    last_pct: AtomicU64,
}

impl ProgressMeter {
    /// A meter that prints only when stderr is a terminal — the CLI
    /// default, which keeps redirected and CI output clean.
    pub fn auto() -> Self {
        Self::with_live(std::io::stderr().is_terminal())
    }

    /// A meter that never prints (`--no-progress`).
    pub fn silent() -> Self {
        Self::with_live(false)
    }

    /// A meter with explicit liveness.
    pub fn with_live(live: bool) -> Self {
        Self {
            live,
            last_pct: AtomicU64::new(0),
        }
    }

    /// Whether the meter prints at all.
    pub fn is_live(&self) -> bool {
        self.live
    }

    /// Observes aggregated progress; prints when the integer percentage
    /// advances, with a final newline at completion.
    pub fn notify(&self, done: u64, total: u64) {
        if !self.live || total == 0 {
            return;
        }
        let pct = done * 100 / total;
        if pct > self.last_pct.fetch_max(pct, Ordering::Relaxed) {
            eprint!("\r  {done}/{total} steps ({pct}%)");
            if done == total {
                eprintln!();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silent_meter_ignores_everything() {
        let meter = ProgressMeter::silent();
        assert!(!meter.is_live());
        meter.notify(1, 10);
        meter.notify(10, 10);
        assert_eq!(meter.last_pct.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn live_meter_gates_on_percent() {
        // Exercise the gate logic without asserting on stderr contents.
        let meter = ProgressMeter::with_live(true);
        meter.notify(0, 0);
        meter.notify(5, 100);
        assert_eq!(meter.last_pct.load(Ordering::Relaxed), 5);
        meter.notify(3, 100);
        assert_eq!(meter.last_pct.load(Ordering::Relaxed), 5);
        meter.notify(100, 100);
        assert_eq!(meter.last_pct.load(Ordering::Relaxed), 100);
    }
}
