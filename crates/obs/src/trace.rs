//! JSONL trace rendering and structural validation.

use serde::Value;

use crate::ring::EventRing;

/// Renders per-job rings as one JSONL document.
///
/// `rings` pairs each ring with its `(grid, job)` coordinates and must
/// already be in stable order — the executor layer guarantees that by
/// merging collectors in job order. Each ring contributes its events
/// oldest-first followed by one `trace-summary` line carrying the ring's
/// event and drop counts, so truncation is always visible in the artifact
/// itself.
pub fn write_jsonl(rings: &[(u32, u32, &EventRing)]) -> String {
    let mut out = String::new();
    for &(grid, job, ring) in rings {
        for event in ring.iter() {
            out.push_str(&event.to_json_line());
            out.push('\n');
        }
        let summary = Value::Object(vec![
            ("grid".into(), Value::UInt(u64::from(grid))),
            ("job".into(), Value::UInt(u64::from(job))),
            ("kind".into(), Value::Str("trace-summary".into())),
            ("events".into(), Value::UInt(ring.len() as u64)),
            ("dropped".into(), Value::UInt(ring.dropped())),
        ]);
        out.push_str(&serde_json::to_string(&summary).expect("summary is finite"));
        out.push('\n');
    }
    out
}

/// Aggregate facts about a validated trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStats {
    /// JSONL lines in the document (including summaries).
    pub lines: usize,
    /// Trace events (excluding summaries).
    pub events: usize,
    /// Distinct `(grid, job)` pairs seen.
    pub jobs: usize,
    /// Events evicted from rings, summed over all job summaries.
    pub dropped: u64,
}

const KNOWN_KINDS: &[&str] = &[
    "start",
    "join",
    "leave",
    "targeted",
    "repair",
    "epoch",
    "warn",
    "end",
    "trace-summary",
];

/// Validates a JSONL trace document structurally.
///
/// Checks that every line is a JSON object with `grid`, `job` and `kind`
/// fields, that the kind tag is known, that non-summary lines carry a
/// `step`, and that steps are monotone non-decreasing within each
/// `(grid, job)` stream. This is the CI trace-smoke contract: it catches
/// schema drift without pinning exact event contents.
///
/// # Errors
///
/// Returns a message naming the first offending line (1-based).
pub fn validate_jsonl(text: &str) -> Result<TraceStats, String> {
    let mut stats = TraceStats {
        lines: 0,
        events: 0,
        jobs: 0,
        dropped: 0,
    };
    // (grid, job) -> last step seen.
    let mut last_step: Vec<((u64, u64), u64)> = Vec::new();
    for (index, line) in text.lines().enumerate() {
        let lineno = index + 1;
        stats.lines += 1;
        let value: Value = serde_json::from_str(line)
            .map_err(|e| format!("line {lineno}: not valid JSON: {e}"))?;
        let fields = value
            .as_object()
            .ok_or_else(|| format!("line {lineno}: not a JSON object"))?;
        let grid = uint_field(fields, "grid")
            .ok_or_else(|| format!("line {lineno}: missing integer `grid`"))?;
        let job = uint_field(fields, "job")
            .ok_or_else(|| format!("line {lineno}: missing integer `job`"))?;
        let kind = str_field(fields, "kind")
            .ok_or_else(|| format!("line {lineno}: missing string `kind`"))?;
        if !KNOWN_KINDS.contains(&kind) {
            return Err(format!("line {lineno}: unknown kind `{kind}`"));
        }
        if kind == "trace-summary" {
            stats.jobs += 1;
            stats.dropped += uint_field(fields, "dropped")
                .ok_or_else(|| format!("line {lineno}: summary missing `dropped`"))?;
            continue;
        }
        stats.events += 1;
        let step = uint_field(fields, "step")
            .ok_or_else(|| format!("line {lineno}: missing integer `step`"))?;
        let key = (grid, job);
        match last_step.iter_mut().find(|(k, _)| *k == key) {
            Some((_, last)) => {
                if step < *last {
                    return Err(format!(
                        "line {lineno}: step {step} goes backwards (job {job} was at {last})"
                    ));
                }
                *last = step;
            }
            None => last_step.push((key, step)),
        }
    }
    Ok(stats)
}

fn uint_field(fields: &[(String, Value)], name: &str) -> Option<u64> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .and_then(|(_, v)| match v {
            Value::UInt(v) => Some(*v),
            Value::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        })
}

fn str_field<'v>(fields: &'v [(String, Value)], name: &str) -> Option<&'v str> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .and_then(|(_, v)| match v {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, TraceEvent};

    fn ring_with(steps: &[u64]) -> EventRing {
        let mut ring = EventRing::new(64);
        for &step in steps {
            ring.push(TraceEvent {
                grid: 0,
                job: 0,
                step,
                kind: EventKind::Leave { node: step },
            });
        }
        ring
    }

    #[test]
    fn written_traces_validate() {
        let ring = ring_with(&[1, 2, 2, 5]);
        let text = write_jsonl(&[(0, 0, &ring)]);
        let stats = validate_jsonl(&text).unwrap();
        assert_eq!(stats.lines, 5);
        assert_eq!(stats.events, 4);
        assert_eq!(stats.jobs, 1);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn empty_ring_still_writes_a_summary() {
        let ring = EventRing::new(8);
        let text = write_jsonl(&[(0, 3, &ring)]);
        assert!(text.contains("\"job\":3"));
        let stats = validate_jsonl(&text).unwrap();
        assert_eq!(stats.lines, 1);
        assert_eq!(stats.events, 0);
        assert_eq!(stats.jobs, 1);
    }

    #[test]
    fn backwards_steps_rejected() {
        let ring = ring_with(&[5, 3]);
        let err = validate_jsonl(&write_jsonl(&[(0, 0, &ring)])).unwrap_err();
        assert!(err.contains("goes backwards"), "{err}");
    }

    #[test]
    fn garbage_rejected() {
        assert!(validate_jsonl("not json\n").is_err());
        assert!(validate_jsonl("{\"grid\":0}\n").is_err());
        assert!(
            validate_jsonl("{\"grid\":0,\"job\":0,\"kind\":\"mystery\",\"step\":1}\n").is_err()
        );
    }

    #[test]
    fn drop_counts_aggregate() {
        let mut ring = EventRing::new(2);
        for step in 1..=5 {
            ring.push(TraceEvent {
                grid: 0,
                job: 0,
                step,
                kind: EventKind::Join { node: step },
            });
        }
        let stats = validate_jsonl(&write_jsonl(&[(0, 0, &ring)])).unwrap();
        assert_eq!(stats.dropped, 3);
        assert_eq!(stats.events, 2);
    }
}
