//! A deterministic metrics registry: counters, gauges and log-bucketed
//! histograms flushed per-epoch into a long-format CSV.

/// A power-of-two-bucketed histogram for small nonnegative quantities
/// (hop counts, route lengths).
///
/// Value `0` lands in bucket 0; value `v > 0` lands in bucket
/// `1 + floor(log2 v)`, so bucket `i > 0` covers `[2^(i-1), 2^i - 1]` and
/// the upper bound of bucket `i` is `2^i - 1`. Log bucketing keeps the
/// flushed row count constant no matter how long routes get.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    total: u64,
    sum: u64,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `value`.
    pub fn record(&mut self, value: u64) {
        let index = Self::bucket_index(value);
        if self.buckets.len() <= index {
            self.buckets.resize(index + 1, 0);
        }
        self.buckets[index] += 1;
        self.total += 1;
        self.sum += value;
    }

    /// The bucket `value` falls into.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The inclusive upper bound of bucket `index`.
    pub fn bucket_bound(index: usize) -> u64 {
        if index == 0 {
            0
        } else if index >= 64 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Observation counts per bucket, lowest bucket first.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }
}

enum Metric {
    Counter(u64),
    Gauge(f64),
    Histogram(LogHistogram),
}

/// Named metrics flushed per-epoch into long-format CSV rows.
///
/// Metric names are registered up front; flush order follows registration
/// order, which is what makes the CSV byte-stable. Counter and gauge values
/// are **cumulative since run start** (not per-epoch deltas): the final
/// epoch's rows are the run totals, which is what the conservation tests
/// check against `TrafficStats`.
pub struct MetricsRegistry {
    names: Vec<&'static str>,
    metrics: Vec<Metric>,
    rows: Vec<String>,
}

/// CSV header for [`MetricsRegistry::to_csv`] output.
pub const METRICS_CSV_HEADER: &str = "grid,job,epoch,step,metric,value";

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            names: Vec::new(),
            metrics: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Registers a counter, returning its handle.
    pub fn counter(&mut self, name: &'static str) -> usize {
        self.register(name, Metric::Counter(0))
    }

    /// Registers a gauge, returning its handle.
    pub fn gauge(&mut self, name: &'static str) -> usize {
        self.register(name, Metric::Gauge(0.0))
    }

    /// Registers a histogram, returning its handle.
    pub fn histogram(&mut self, name: &'static str) -> usize {
        self.register(name, Metric::Histogram(LogHistogram::new()))
    }

    fn register(&mut self, name: &'static str, metric: Metric) -> usize {
        assert!(
            !self.names.contains(&name),
            "metric `{name}` registered twice"
        );
        self.names.push(name);
        self.metrics.push(metric);
        self.metrics.len() - 1
    }

    /// Sets a counter to its new cumulative value (monotonicity asserted).
    pub fn set_counter(&mut self, handle: usize, value: u64) {
        match &mut self.metrics[handle] {
            Metric::Counter(v) => {
                debug_assert!(
                    value >= *v,
                    "counter `{}` went backwards",
                    self.names[handle]
                );
                *v = value;
            }
            _ => panic!("handle {handle} is not a counter"),
        }
    }

    /// Adds to a counter.
    pub fn add_counter(&mut self, handle: usize, delta: u64) {
        match &mut self.metrics[handle] {
            Metric::Counter(v) => *v += delta,
            _ => panic!("handle {handle} is not a counter"),
        }
    }

    /// Current value of a counter.
    pub fn counter_value(&self, handle: usize) -> u64 {
        match &self.metrics[handle] {
            Metric::Counter(v) => *v,
            _ => panic!("handle {handle} is not a counter"),
        }
    }

    /// Sets a gauge.
    pub fn set_gauge(&mut self, handle: usize, value: f64) {
        match &mut self.metrics[handle] {
            Metric::Gauge(v) => *v = value,
            _ => panic!("handle {handle} is not a gauge"),
        }
    }

    /// Records an observation into a histogram.
    pub fn observe(&mut self, handle: usize, value: u64) {
        match &mut self.metrics[handle] {
            Metric::Histogram(h) => h.record(value),
            _ => panic!("handle {handle} is not a histogram"),
        }
    }

    /// Read access to a histogram.
    pub fn histogram_value(&self, handle: usize) -> &LogHistogram {
        match &self.metrics[handle] {
            Metric::Histogram(h) => h,
            _ => panic!("handle {handle} is not a histogram"),
        }
    }

    /// Snapshots every metric into CSV rows for one epoch.
    ///
    /// Counters and gauges emit one row each; a histogram emits one row per
    /// occupied-prefix bucket (`name_le_B` with `B` the bucket's inclusive
    /// upper bound) plus `name_total` and `name_sum` rows.
    pub fn flush(&mut self, grid: u32, job: u32, epoch: u64, step: u64) {
        for index in 0..self.metrics.len() {
            let name = self.names[index];
            match &self.metrics[index] {
                Metric::Counter(v) => {
                    self.rows
                        .push(format!("{grid},{job},{epoch},{step},{name},{v}"));
                }
                Metric::Gauge(v) => {
                    self.rows
                        .push(format!("{grid},{job},{epoch},{step},{name},{v:.6}"));
                }
                Metric::Histogram(h) => {
                    for (bucket, count) in h.buckets().iter().enumerate() {
                        let bound = LogHistogram::bucket_bound(bucket);
                        self.rows.push(format!(
                            "{grid},{job},{epoch},{step},{name}_le_{bound},{count}"
                        ));
                    }
                    self.rows.push(format!(
                        "{grid},{job},{epoch},{step},{name}_total,{}",
                        h.total()
                    ));
                    self.rows.push(format!(
                        "{grid},{job},{epoch},{step},{name}_sum,{}",
                        h.sum()
                    ));
                }
            }
        }
    }

    /// All flushed rows so far, without the header.
    pub fn rows(&self) -> &[String] {
        &self.rows
    }

    /// Renders the flushed rows as a CSV document with header.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(METRICS_CSV_HEADER);
        out.push('\n');
        for row in &self.rows {
            out.push_str(row);
            out.push('\n');
        }
        out
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(LogHistogram::bucket_index(0), 0);
        assert_eq!(LogHistogram::bucket_index(1), 1);
        assert_eq!(LogHistogram::bucket_index(2), 2);
        assert_eq!(LogHistogram::bucket_index(3), 2);
        assert_eq!(LogHistogram::bucket_index(4), 3);
        assert_eq!(LogHistogram::bucket_index(7), 3);
        assert_eq!(LogHistogram::bucket_index(8), 4);
        assert_eq!(LogHistogram::bucket_bound(0), 0);
        assert_eq!(LogHistogram::bucket_bound(1), 1);
        assert_eq!(LogHistogram::bucket_bound(2), 3);
        assert_eq!(LogHistogram::bucket_bound(3), 7);
    }

    #[test]
    fn histogram_totals_conserve() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 1, 3, 8] {
            h.record(v);
        }
        assert_eq!(h.total(), 5);
        assert_eq!(h.sum(), 13);
        assert_eq!(h.buckets().iter().sum::<u64>(), h.total());
    }

    #[test]
    fn flush_emits_rows_in_registration_order() {
        let mut reg = MetricsRegistry::new();
        let requests = reg.counter("requests");
        let live = reg.gauge("live");
        let hops = reg.histogram("route_hops");
        reg.add_counter(requests, 10);
        reg.set_gauge(live, 99.0);
        reg.observe(hops, 2);
        reg.flush(0, 1, 0, 5);
        let csv = reg.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], METRICS_CSV_HEADER);
        assert_eq!(lines[1], "0,1,0,5,requests,10");
        assert_eq!(lines[2], "0,1,0,5,live,99.000000");
        assert_eq!(lines[3], "0,1,0,5,route_hops_le_0,0");
        assert_eq!(lines[4], "0,1,0,5,route_hops_le_1,0");
        assert_eq!(lines[5], "0,1,0,5,route_hops_le_3,1");
        assert_eq!(lines[6], "0,1,0,5,route_hops_total,1");
        assert_eq!(lines[7], "0,1,0,5,route_hops_sum,2");
        assert_eq!(lines.len(), 8);
    }

    #[test]
    fn counters_are_cumulative() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("chunks");
        reg.set_counter(c, 5);
        reg.flush(0, 0, 0, 1);
        reg.set_counter(c, 12);
        reg.flush(0, 0, 1, 2);
        assert_eq!(reg.counter_value(c), 12);
        assert_eq!(reg.rows(), &["0,0,0,1,chunks,5", "0,0,1,2,chunks,12"]);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_names_rejected() {
        let mut reg = MetricsRegistry::new();
        reg.counter("x");
        reg.counter("x");
    }
}
