//! Deterministic observability primitives: structured trace events, a
//! metrics registry, and a phase profiler.
//!
//! Everything in this crate is clocked **logically** — epoch, step, grid and
//! job indices — never by wall time on the data path. That is what lets a
//! trace or metrics stream be byte-identical between a serial run and a
//! `--threads N` run: events are collected per job into bounded
//! [ring buffers](EventRing) and the caller (the executor layer in
//! `fairswap_core`) concatenates them in stable job order, so scheduling can
//! never leak into the output. The only place wall time appears is the
//! [phase profiler](PhaseTimes), whose output feeds `--profile` breakdowns
//! and `BENCH_N.json` artifacts that are never byte-compared.
//!
//! The crate is deliberately free of simulation types: `fairswap_core`
//! adapts its simulation state into [`TraceEvent`]s and registry updates.
//!
//! ```
//! use fairswap_obs::{EventKind, EventRing, TraceEvent};
//!
//! let mut ring = EventRing::new(4);
//! ring.push(TraceEvent {
//!     grid: 0,
//!     job: 0,
//!     step: 1,
//!     kind: EventKind::Join { node: 7 },
//! });
//! assert_eq!(ring.len(), 1);
//! assert_eq!(ring.dropped(), 0);
//! ```

mod event;
mod logger;
mod metrics;
mod profile;
mod progress;
mod ring;
mod trace;

pub use event::{EventKind, TraceEvent};
pub use logger::warn;
pub use metrics::{LogHistogram, MetricsRegistry, METRICS_CSV_HEADER};
pub use profile::{Phase, PhaseTimes, PHASES};
pub use progress::ProgressMeter;
pub use ring::EventRing;
pub use trace::{validate_jsonl, write_jsonl, TraceStats};
