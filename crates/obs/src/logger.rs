//! Diagnostic logging for the CLI and config layer.
//!
//! Deliberately tiny: warnings are operator-facing text on stderr, kept out
//! of stdout (which carries experiment results) and out of trace/metrics
//! artifacts except where the caller explicitly mirrors them (e.g. spec
//! warnings become `warn` trace events so a saved trace records the exact
//! configuration diagnostics of the run that produced it).

/// Prints one warning line to stderr with the shared `warning:` prefix.
pub fn warn(message: &str) {
    eprintln!("warning: {message}");
}
