//! Wall-clock phase profiling.
//!
//! The one deliberately non-deterministic corner of the crate: phase timings
//! are real elapsed nanoseconds. They never enter trace or metrics streams
//! (which must stay byte-identical across runs) — they surface only through
//! the CLI `--profile` breakdown and the `BENCH_N.json` schema.

/// A coarse stage of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Building the overlay topology and workload.
    TopologyBuild,
    /// The simulation step loop (excluding settlement ticks).
    SimSteps,
    /// SWAP settlement: amortization ticks and departure settlements.
    Settlement,
    /// Fairness computation and report assembly.
    Fairness,
    /// Rendering and writing CSV artifacts.
    CsvEmit,
}

/// Every phase, in display order.
pub const PHASES: [Phase; 5] = [
    Phase::TopologyBuild,
    Phase::SimSteps,
    Phase::Settlement,
    Phase::Fairness,
    Phase::CsvEmit,
];

impl Phase {
    /// A stable snake_case identifier, used in JSON artifacts.
    pub fn id(&self) -> &'static str {
        match self {
            Phase::TopologyBuild => "topology_build",
            Phase::SimSteps => "sim_steps",
            Phase::Settlement => "settlement",
            Phase::Fairness => "fairness",
            Phase::CsvEmit => "csv_emit",
        }
    }

    /// Parses a phase from its [`Phase::id`] string.
    pub fn from_id(id: &str) -> Option<Self> {
        PHASES.into_iter().find(|p| p.id() == id)
    }

    fn index(&self) -> usize {
        match self {
            Phase::TopologyBuild => 0,
            Phase::SimSteps => 1,
            Phase::Settlement => 2,
            Phase::Fairness => 3,
            Phase::CsvEmit => 4,
        }
    }
}

/// Accumulated wall time per phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    nanos: [u64; 5],
}

impl PhaseTimes {
    /// All-zero timings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `nanos` to a phase.
    pub fn add(&mut self, phase: Phase, nanos: u64) {
        self.nanos[phase.index()] += nanos;
    }

    /// Accumulated nanoseconds for a phase.
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.nanos[phase.index()]
    }

    /// Accumulated milliseconds for a phase.
    pub fn millis(&self, phase: Phase) -> f64 {
        self.nanos(phase) as f64 / 1e6
    }

    /// Total nanoseconds across all phases.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Merges another accumulator into this one (summing per phase) —
    /// how per-job timings combine into a grid-wide breakdown.
    pub fn merge(&mut self, other: &PhaseTimes) {
        for (a, b) in self.nanos.iter_mut().zip(&other.nanos) {
            *a += b;
        }
    }

    /// Renders a human-readable breakdown, one line per phase with its
    /// share of the total.
    pub fn render(&self) -> String {
        let total = self.total_nanos().max(1) as f64;
        let mut out = String::new();
        for phase in PHASES {
            let nanos = self.nanos(phase);
            out.push_str(&format!(
                "  {:<16} {:>10.1} ms  ({:>5.1}%)\n",
                phase.id(),
                nanos as f64 / 1e6,
                nanos as f64 / total * 100.0
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_and_merge() {
        let mut a = PhaseTimes::new();
        a.add(Phase::SimSteps, 100);
        a.add(Phase::SimSteps, 50);
        a.add(Phase::Settlement, 25);
        let mut b = PhaseTimes::new();
        b.add(Phase::SimSteps, 10);
        a.merge(&b);
        assert_eq!(a.nanos(Phase::SimSteps), 160);
        assert_eq!(a.nanos(Phase::Settlement), 25);
        assert_eq!(a.total_nanos(), 185);
        assert_eq!(a.millis(Phase::Settlement), 25.0 / 1e6);
    }

    #[test]
    fn ids_round_trip() {
        for phase in PHASES {
            assert_eq!(Phase::from_id(phase.id()), Some(phase));
        }
        assert_eq!(Phase::from_id("mystery"), None);
    }

    #[test]
    fn render_covers_every_phase() {
        let mut t = PhaseTimes::new();
        t.add(Phase::TopologyBuild, 2_000_000);
        let rendered = t.render();
        for phase in PHASES {
            assert!(rendered.contains(phase.id()), "{rendered}");
        }
        assert!(rendered.contains("100.0%"), "{rendered}");
    }
}
