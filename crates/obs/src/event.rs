//! Typed trace events on logical clocks.

use serde::Value;

/// What happened at one point of a simulation, in logical time.
///
/// Kinds mirror the simulator's own vocabulary (membership churn, targeted
/// departures, repair, per-epoch counter snapshots) rather than generic
/// "spans": the set is closed so downstream tooling can validate a trace
/// structurally (see [`crate::validate_jsonl`]).
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// Emitted once before the first step with the run's static shape.
    Start {
        /// Nodes in the overlay at build time.
        nodes: u64,
        /// Files (timesteps) the run will simulate.
        files: u64,
        /// Master seed every RNG stream forks from.
        seed: u64,
    },
    /// A node joined (or rejoined) the overlay.
    Join {
        /// The joining node's index.
        node: u64,
    },
    /// A node left the overlay through background churn.
    Leave {
        /// The departing node's index.
        node: u64,
    },
    /// A node was removed by the targeted-departure scenario trigger.
    Targeted {
        /// The removed node's index.
        node: u64,
    },
    /// A repair hook fired for a departure.
    Repair {
        /// The departed node the hook fired for.
        node: u64,
        /// Repair events the hook reported.
        events: u64,
    },
    /// Per-epoch snapshot marker; the full counter set goes to the metrics
    /// stream, the trace keeps a compact summary for correlation.
    Epoch {
        /// Epoch index (0-based, one per flush stride).
        epoch: u64,
        /// Live nodes at the sample point.
        live: u64,
        /// Cumulative chunk requests issued.
        requests: u64,
        /// Cumulative requests that could not be delivered.
        stuck: u64,
        /// Gini coefficient of the F2 income distribution.
        f2_gini: f64,
    },
    /// A diagnostic warning (e.g. unknown spec fields).
    Warn {
        /// Human-readable warning text.
        message: String,
    },
    /// Emitted once after the last step with final totals.
    End {
        /// Total chunk requests issued.
        requests: u64,
        /// Total requests that could not be delivered.
        stuck: u64,
    },
}

impl EventKind {
    /// The stable string tag used in the JSONL encoding.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::Start { .. } => "start",
            EventKind::Join { .. } => "join",
            EventKind::Leave { .. } => "leave",
            EventKind::Targeted { .. } => "targeted",
            EventKind::Repair { .. } => "repair",
            EventKind::Epoch { .. } => "epoch",
            EventKind::Warn { .. } => "warn",
            EventKind::End { .. } => "end",
        }
    }
}

/// One trace event, addressed by logical coordinates only.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Which `run_jobs` grid (0-based, in CLI invocation order) emitted it.
    pub grid: u32,
    /// The job's index within its grid — the executor's stable merge order.
    pub job: u32,
    /// Simulation timestep (1-based; 0 for pre-run events such as `start`).
    pub step: u64,
    /// What happened.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Renders the event as one JSON object with a fixed field order:
    /// `grid`, `job`, `step`, `kind`, then kind-specific payload fields.
    pub fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = vec![
            ("grid".into(), Value::UInt(u64::from(self.grid))),
            ("job".into(), Value::UInt(u64::from(self.job))),
            ("step".into(), Value::UInt(self.step)),
            ("kind".into(), Value::Str(self.kind.tag().into())),
        ];
        match &self.kind {
            EventKind::Start { nodes, files, seed } => {
                fields.push(("nodes".into(), Value::UInt(*nodes)));
                fields.push(("files".into(), Value::UInt(*files)));
                fields.push(("seed".into(), Value::UInt(*seed)));
            }
            EventKind::Join { node } | EventKind::Leave { node } | EventKind::Targeted { node } => {
                fields.push(("node".into(), Value::UInt(*node)));
            }
            EventKind::Repair { node, events } => {
                fields.push(("node".into(), Value::UInt(*node)));
                fields.push(("events".into(), Value::UInt(*events)));
            }
            EventKind::Epoch {
                epoch,
                live,
                requests,
                stuck,
                f2_gini,
            } => {
                fields.push(("epoch".into(), Value::UInt(*epoch)));
                fields.push(("live".into(), Value::UInt(*live)));
                fields.push(("requests".into(), Value::UInt(*requests)));
                fields.push(("stuck".into(), Value::UInt(*stuck)));
                fields.push(("f2_gini".into(), Value::Float(*f2_gini)));
            }
            EventKind::Warn { message } => {
                fields.push(("message".into(), Value::Str(message.clone())));
            }
            EventKind::End { requests, stuck } => {
                fields.push(("requests".into(), Value::UInt(*requests)));
                fields.push(("stuck".into(), Value::UInt(*stuck)));
            }
        }
        Value::Object(fields)
    }

    /// Renders the event as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(&self.to_value()).expect("trace events contain no non-finite floats")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_has_stable_field_order() {
        let event = TraceEvent {
            grid: 1,
            job: 2,
            step: 3,
            kind: EventKind::Repair { node: 9, events: 4 },
        };
        assert_eq!(
            event.to_json_line(),
            r#"{"grid":1,"job":2,"step":3,"kind":"repair","node":9,"events":4}"#
        );
    }

    #[test]
    fn every_kind_serializes() {
        let kinds = vec![
            EventKind::Start {
                nodes: 1,
                files: 2,
                seed: 3,
            },
            EventKind::Join { node: 1 },
            EventKind::Leave { node: 1 },
            EventKind::Targeted { node: 1 },
            EventKind::Repair { node: 1, events: 2 },
            EventKind::Epoch {
                epoch: 0,
                live: 10,
                requests: 5,
                stuck: 1,
                f2_gini: 0.25,
            },
            EventKind::Warn {
                message: "quoted \"text\"".into(),
            },
            EventKind::End {
                requests: 5,
                stuck: 1,
            },
        ];
        for kind in kinds {
            let tag = kind.tag().to_string();
            let line = TraceEvent {
                grid: 0,
                job: 0,
                step: 0,
                kind,
            }
            .to_json_line();
            assert!(line.contains(&format!("\"kind\":\"{tag}\"")), "{line}");
        }
    }
}
