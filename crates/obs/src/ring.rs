//! Bounded per-job event buffers.

use std::collections::VecDeque;

use crate::event::TraceEvent;

/// A bounded FIFO of trace events.
///
/// When a run emits more events than the ring holds, the **oldest** events
/// are dropped and counted — never silently: the drop count is surfaced in
/// the trace's per-job summary line (see [`crate::write_jsonl`]). Keeping
/// the newest events biases the trace toward the end of a run, which is
/// where churn outcomes and final counter states live.
///
/// Dropping is itself deterministic (it depends only on the event sequence,
/// which is seed-deterministic), so a truncated trace is still byte-identical
/// across thread counts.
#[derive(Debug, Clone)]
pub struct EventRing {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl EventRing {
    /// An empty ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            events: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest if the ring is full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Events currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Maximum events the ring can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn event(step: u64) -> TraceEvent {
        TraceEvent {
            grid: 0,
            job: 0,
            step,
            kind: EventKind::Join { node: step },
        }
    }

    #[test]
    fn keeps_newest_when_full() {
        let mut ring = EventRing::new(3);
        for step in 1..=5 {
            ring.push(event(step));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let steps: Vec<u64> = ring.iter().map(|e| e.step).collect();
        assert_eq!(steps, vec![3, 4, 5]);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut ring = EventRing::new(0);
        assert_eq!(ring.capacity(), 1);
        assert!(ring.is_empty());
        ring.push(event(1));
        ring.push(event(2));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.dropped(), 1);
        assert_eq!(ring.iter().next().unwrap().step, 2);
    }
}
