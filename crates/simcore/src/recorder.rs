//! Trajectory recording.

use crate::engine::StepInfo;

/// Observes the state after every completed timestep.
///
/// cadCAD records the full trajectory by default; for large states that is
/// wasteful, so recording is pluggable. [`NullRecorder`] records nothing,
/// [`TrajectoryRecorder`] clones the state at a configurable stride.
pub trait Recorder<S> {
    /// Called after each completed timestep with the post-step state.
    fn on_step(&mut self, info: &StepInfo, state: &S);
}

/// Records nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl<S> Recorder<S> for NullRecorder {
    fn on_step(&mut self, _info: &StepInfo, _state: &S) {}
}

/// Clones the state every `stride` timesteps.
#[derive(Debug, Clone)]
pub struct TrajectoryRecorder<S> {
    stride: u64,
    snapshots: Vec<(StepInfo, S)>,
}

impl<S> TrajectoryRecorder<S> {
    /// Records every `stride`-th timestep (stride 0 is treated as 1).
    pub fn every(stride: u64) -> Self {
        Self {
            stride: stride.max(1),
            snapshots: Vec::new(),
        }
    }

    /// The recorded `(step, state)` snapshots.
    pub fn snapshots(&self) -> &[(StepInfo, S)] {
        &self.snapshots
    }

    /// Consumes the recorder, returning the snapshots.
    pub fn into_snapshots(self) -> Vec<(StepInfo, S)> {
        self.snapshots
    }
}

impl<S: Clone> Recorder<S> for TrajectoryRecorder<S> {
    fn on_step(&mut self, info: &StepInfo, state: &S) {
        if info.timestep.is_multiple_of(self.stride) {
            self.snapshots.push((*info, state.clone()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(t: u64) -> StepInfo {
        StepInfo {
            param_index: 0,
            run: 0,
            timestep: t,
            substep: 0,
        }
    }

    #[test]
    fn null_recorder_is_a_noop() {
        let mut r = NullRecorder;
        Recorder::<u32>::on_step(&mut r, &info(1), &5);
    }

    #[test]
    fn trajectory_recorder_strides() {
        let mut r = TrajectoryRecorder::every(3);
        for t in 1..=9 {
            r.on_step(&info(t), &(t as u32));
        }
        let timesteps: Vec<u64> = r.snapshots().iter().map(|(i, _)| i.timestep).collect();
        assert_eq!(timesteps, vec![3, 6, 9]);
        assert_eq!(r.into_snapshots().len(), 3);
    }

    #[test]
    fn zero_stride_records_every_step() {
        let mut r = TrajectoryRecorder::every(0);
        for t in 1..=4 {
            r.on_step(&info(t), &t);
        }
        assert_eq!(r.snapshots().len(), 4);
    }
}
