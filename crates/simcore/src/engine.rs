//! The simulation executor: timesteps × runs × parameter sweep.

use serde::{Deserialize, Serialize};

use crate::block::Block;
use crate::recorder::{NullRecorder, Recorder};
use crate::rng::derive_rng;

/// Position of the current execution within a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StepInfo {
    /// Index into the parameter sweep.
    pub param_index: usize,
    /// Monte-Carlo run number, starting at 0.
    pub run: u32,
    /// Timestep, starting at 1 for the first executed step (cadCAD keeps
    /// timestep 0 for the initial state).
    pub timestep: u64,
    /// Substep: index of the block within the timestep, starting at 0.
    pub substep: u32,
}

/// The outcome of one `(parameter set, run)` cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunTrace<S> {
    /// Index into the parameter sweep.
    pub param_index: usize,
    /// Monte-Carlo run number.
    pub run: u32,
    /// Timesteps executed.
    pub timesteps: u64,
    /// State after the final timestep.
    pub final_state: S,
}

/// All traces of a sweep, in `(param_index, run)` order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResults<S> {
    traces: Vec<RunTrace<S>>,
    params_len: usize,
    runs: u32,
}

impl<S> SweepResults<S> {
    /// All run traces, ordered by parameter index, then run.
    pub fn traces(&self) -> &[RunTrace<S>] {
        &self.traces
    }

    /// Consumes the results, returning the traces.
    pub fn into_traces(self) -> Vec<RunTrace<S>> {
        self.traces
    }

    /// The trace for one `(param_index, run)` cell.
    pub fn trace(&self, param_index: usize, run: u32) -> Option<&RunTrace<S>> {
        if param_index >= self.params_len || run >= self.runs {
            return None;
        }
        self.traces
            .get(param_index * self.runs as usize + run as usize)
    }

    /// Final states of every run for one parameter index.
    pub fn final_states(&self, param_index: usize) -> impl Iterator<Item = &S> {
        self.traces
            .iter()
            .filter(move |t| t.param_index == param_index)
            .map(|t| &t.final_state)
    }
}

/// A configured simulation: blocks plus execution dimensions.
///
/// See the [crate docs](crate) for a complete example.
pub struct Simulation<S, P, G> {
    blocks: Vec<Block<S, P, G>>,
    timesteps: u64,
    runs: u32,
    seed: u64,
}

impl<S: Clone, P, G> Simulation<S, P, G> {
    /// Creates a simulation executing `timesteps` steps per run, `runs`
    /// Monte-Carlo runs per parameter set, from `seed`.
    pub fn new(timesteps: u64, runs: u32, seed: u64) -> Self {
        Self {
            blocks: Vec::new(),
            timesteps,
            runs,
            seed,
        }
    }

    /// Appends a partial state update block (executed in insertion order,
    /// one substep each).
    #[must_use]
    pub fn block(mut self, block: Block<S, P, G>) -> Self {
        self.blocks.push(block);
        self
    }

    /// Number of configured blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Runs the full sweep without recording intermediate states.
    ///
    /// `init` builds the initial state for each `(param_index, run)` cell.
    pub fn run_sweep<F>(&self, params: &[P], init: F) -> SweepResults<S>
    where
        F: Fn(usize, u32) -> S,
    {
        self.run_sweep_recorded(params, init, &mut NullRecorder)
    }

    /// Runs the full sweep, reporting every post-timestep state to
    /// `recorder`.
    pub fn run_sweep_recorded<F, R>(
        &self,
        params: &[P],
        init: F,
        recorder: &mut R,
    ) -> SweepResults<S>
    where
        F: Fn(usize, u32) -> S,
        R: Recorder<S>,
    {
        let mut traces = Vec::with_capacity(params.len() * self.runs as usize);
        for (param_index, param) in params.iter().enumerate() {
            for run in 0..self.runs {
                let mut state = init(param_index, run);
                let mut rng = derive_rng(self.seed, param_index, run);
                for timestep in 1..=self.timesteps {
                    for (substep, block) in self.blocks.iter().enumerate() {
                        let info = StepInfo {
                            param_index,
                            run,
                            timestep,
                            substep: substep as u32,
                        };
                        block.execute(&mut rng, &info, param, &mut state);
                    }
                    recorder.on_step(
                        &StepInfo {
                            param_index,
                            run,
                            timestep,
                            substep: self.blocks.len().saturating_sub(1) as u32,
                        },
                        &state,
                    );
                }
                traces.push(RunTrace {
                    param_index,
                    run,
                    timesteps: self.timesteps,
                    final_state: state,
                });
            }
        }
        SweepResults {
            traces,
            params_len: params.len(),
            runs: self.runs,
        }
    }

    /// Convenience: single parameter set, single run, returning the final
    /// state directly.
    pub fn run_single(&self, param: &P, init: S) -> S {
        let mut state = init;
        let mut rng = derive_rng(self.seed, 0, 0);
        for timestep in 1..=self.timesteps {
            for (substep, block) in self.blocks.iter().enumerate() {
                let info = StepInfo {
                    param_index: 0,
                    run: 0,
                    timestep,
                    substep: substep as u32,
                };
                block.execute(&mut rng, &info, param, &mut state);
            }
        }
        state
    }
}

impl<S, P, G> std::fmt::Debug for Simulation<S, P, G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("blocks", &self.blocks.len())
            .field("timesteps", &self.timesteps)
            .field("runs", &self.runs)
            .field("seed", &self.seed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::TrajectoryRecorder;
    use rand::Rng;

    #[derive(Debug, Clone, PartialEq)]
    struct Counter {
        total: i64,
        steps_seen: Vec<u64>,
    }

    struct Params {
        increment: i64,
    }

    fn increment_block() -> Block<Counter, Params, i64> {
        Block::new("increment")
            .policy(|_, _, p: &Params, _| p.increment)
            .update(|_, info, _, _, signals, s: &mut Counter| {
                s.total += signals.iter().sum::<i64>();
                s.steps_seen.push(info.timestep);
            })
    }

    fn init(_: usize, _: u32) -> Counter {
        Counter {
            total: 0,
            steps_seen: Vec::new(),
        }
    }

    #[test]
    fn executes_timesteps_in_order() {
        let results = Simulation::new(5, 1, 1)
            .block(increment_block())
            .run_sweep(&[Params { increment: 3 }], init);
        let trace = results.trace(0, 0).unwrap();
        assert_eq!(trace.final_state.total, 15);
        assert_eq!(trace.final_state.steps_seen, vec![1, 2, 3, 4, 5]);
        assert_eq!(trace.timesteps, 5);
    }

    #[test]
    fn sweep_dimensions() {
        let params = vec![Params { increment: 1 }, Params { increment: 10 }];
        let results = Simulation::new(2, 3, 7)
            .block(increment_block())
            .run_sweep(&params, init);
        assert_eq!(results.traces().len(), 6);
        assert_eq!(results.trace(0, 2).unwrap().final_state.total, 2);
        assert_eq!(results.trace(1, 0).unwrap().final_state.total, 20);
        assert!(results.trace(2, 0).is_none());
        assert!(results.trace(0, 3).is_none());
        assert_eq!(results.final_states(1).count(), 3);
    }

    #[test]
    fn deterministic_across_invocations() {
        let run = || {
            let block = Block::<u64, (), u64>::new("rng")
                .policy(|rng, _, _, _| rng.gen_range(0..1_000_000))
                .update(|_, _, _, _, signals, s| *s = s.wrapping_add(signals[0]));
            Simulation::new(50, 2, 0xFA12)
                .block(block)
                .run_sweep(&[()], |_, _| 0u64)
                .into_traces()
                .into_iter()
                .map(|t| t.final_state)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn runs_get_independent_rng_streams() {
        let block = Block::<u64, (), u64>::new("rng")
            .policy(|rng, _, _, _| rng.gen())
            .update(|_, _, _, _, signals, s| *s = signals[0]);
        let results = Simulation::new(1, 2, 3)
            .block(block)
            .run_sweep(&[()], |_, _| 0u64);
        assert_ne!(
            results.trace(0, 0).unwrap().final_state,
            results.trace(0, 1).unwrap().final_state
        );
    }

    #[test]
    fn blocks_run_as_ordered_substeps() {
        let first =
            Block::<Vec<&'static str>, (), ()>::new("first").update(|_, info, _, _, _, s| {
                assert_eq!(info.substep, 0);
                s.push("first");
            });
        let second =
            Block::<Vec<&'static str>, (), ()>::new("second").update(|_, info, _, _, _, s| {
                assert_eq!(info.substep, 1);
                s.push("second");
            });
        let sim = Simulation::new(2, 1, 0).block(first).block(second);
        assert_eq!(sim.block_count(), 2);
        let final_state = sim.run_single(&(), Vec::new());
        assert_eq!(final_state, vec!["first", "second", "first", "second"]);
    }

    #[test]
    fn recorder_sees_every_timestep() {
        let mut recorder = TrajectoryRecorder::every(1);
        Simulation::new(4, 1, 0)
            .block(increment_block())
            .run_sweep_recorded(&[Params { increment: 2 }], init, &mut recorder);
        let totals: Vec<i64> = recorder.snapshots().iter().map(|(_, s)| s.total).collect();
        assert_eq!(totals, vec![2, 4, 6, 8]);
    }

    #[test]
    fn debug_formatting() {
        let sim = Simulation::<Counter, Params, i64>::new(1, 1, 0);
        assert!(format!("{sim:?}").contains("Simulation"));
    }
}
