//! A deterministic, typed reimplementation of the cadCAD execution model.
//!
//! The paper's simulator (§IV-A) is built on
//! [cadCAD](https://cadcad.org), a Python engine in which a system is
//! described as:
//!
//! * a **state** object,
//! * *partial state update blocks*, each containing **policies** (read the
//!   pre-block state, emit signals) and **state update functions** (consume
//!   the signals, produce the next state),
//! * executed for a number of **timesteps**, repeated over Monte-Carlo
//!   **runs**, across a **parameter sweep**.
//!
//! This crate reproduces those semantics in Rust with full determinism:
//! every `(parameter set, run)` pair gets its own counter-derived
//! [`rand_chacha::ChaCha12Rng`] stream, so results are reproducible across
//! machines and independent of execution order.
//!
//! Beyond the engine, this crate hosts the substrate-level machinery the
//! rest of the workspace shares:
//!
//! * [`Executor`] — a scoped-thread worker pool with stable-order merge,
//!   behind every parallel experiment grid and threaded topology build;
//! * [`rng`] — the domain-separated sub-seed derivation
//!   ([`rng::sub_seed`]) that lets every concern fork an independent
//!   stream off one master seed;
//! * [`scenario`] — index-based scripted-event streams
//!   ([`scenario::EventScript`]) and per-node bandwidth budgets
//!   ([`scenario::CapacityPlan`]) for the overlay-shock scenarios built
//!   on top of churn.
//!
//! ```
//! use fairswap_simcore::{Block, Simulation};
//!
//! // A counter that adds `increment` per timestep, with one policy
//! // emitting the signal and one update applying it.
//! #[derive(Clone)]
//! struct State { total: i64 }
//! struct Params { increment: i64 }
//!
//! let block = Block::<State, Params, i64>::new("accumulate")
//!     .policy(|_rng, _info, p, _s| p.increment)
//!     .update(|_rng, _info, _p, _pre, signals, s| {
//!         s.total += signals.iter().sum::<i64>();
//!     });
//!
//! let results = Simulation::new(10, 3, 0xFA12)
//!     .block(block)
//!     .run_sweep(&[Params { increment: 2 }], |_, _| State { total: 0 });
//! assert_eq!(results.traces().len(), 3); // one per run
//! assert!(results.traces().iter().all(|t| t.final_state.total == 20));
//! ```

mod block;
mod engine;
mod executor;
mod recorder;
pub mod rng;
pub mod scenario;

pub use block::Block;
pub use engine::{RunTrace, Simulation, StepInfo, SweepResults};
pub use executor::{Executor, Progress};
pub use recorder::{NullRecorder, Recorder, TrajectoryRecorder};
pub use rng::{derive_rng, SimRng};
pub use scenario::{CapacityPlan, EventScript, ScriptEvent, ScriptEventKind};
