//! A seed-deterministic scoped-thread worker pool for experiment grids.
//!
//! The paper's sweeps — `(k, mechanism, originator fraction, churn rate)`
//! cells — are embarrassingly parallel: every cell derives its own RNG
//! stream from the master seed, so cells can run in any order on any number
//! of threads and still produce bit-identical results. [`Executor`] turns
//! that property into wall-clock speedups: it fans a `Vec` of jobs out over
//! `std::thread`-scoped workers and merges the results **in stable job
//! order**, so `Executor::new(8)` and [`Executor::serial`] return the exact
//! same `Vec`.
//!
//! Progress across all cells is aggregated through [`Progress`]: each job
//! advances a shared atomic counter (in whatever unit the caller chose —
//! simulation timesteps, rows, bytes) and the caller's notify hook observes
//! the monotone global count, which is how the CLI renders one live
//! progress line for a whole multi-core sweep.
//!
//! ```
//! use fairswap_simcore::Executor;
//!
//! let squares = Executor::new(4).run((0..32u64).collect(), |_idx, n| n * n);
//! assert_eq!(squares[5], 25);
//! assert_eq!(squares.len(), 32);
//! ```

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Aggregated progress over one grid of jobs.
///
/// Shared by every worker; [`Progress::advance`] is safe to call from any
/// thread and invokes the notify hook with the post-increment global count.
pub struct Progress<'a> {
    done: &'a AtomicU64,
    total: u64,
    notify: &'a (dyn Fn(u64, u64) + Sync),
}

impl Progress<'_> {
    /// Records `delta` completed units and notifies the observer with the
    /// new global `(done, total)` pair. With a pre-computed total the
    /// reported count is clamped to it; without one (`total = 0`) the raw
    /// count passes through, so the observer still sees progress.
    pub fn advance(&self, delta: u64) {
        let done = self.done.fetch_add(delta, Ordering::Relaxed) + delta;
        let reported = if self.total == 0 {
            done
        } else {
            done.min(self.total)
        };
        (self.notify)(reported, self.total);
    }

    /// Units completed so far across all jobs.
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Total units across all jobs (0 when the caller did not pre-compute
    /// one; `advance` still counts, the observer just sees `total = 0`).
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// A fixed-width worker pool over scoped `std::thread`s.
///
/// The pool is stateless between calls: each [`Executor::run`] /
/// [`Executor::run_with_progress`] spawns its workers, drains the job list
/// through an atomic cursor, and joins before returning. Results land at
/// their job's index, so output order never depends on scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// An executor running `threads` workers; `0` means "one worker per
    /// available CPU core".
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            threads
        };
        Self { threads }
    }

    /// The single-threaded executor: runs every job inline on the calling
    /// thread. The deterministic baseline every parallel run must match.
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// Number of worker threads this executor uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every job and returns the results in job order.
    ///
    /// `run` receives the job's index alongside the job so callers can
    /// derive per-cell sub-seeds without embedding the index in the job
    /// type.
    pub fn run<J, R, F>(&self, jobs: Vec<J>, run: F) -> Vec<R>
    where
        J: Send,
        R: Send,
        F: Fn(usize, J) -> R + Sync,
    {
        self.run_with_progress(jobs, 0, |_, _| {}, |index, job, _| run(index, job))
    }

    /// Runs every job with aggregated progress reporting.
    ///
    /// `total_units` is the grid-wide unit count the jobs will collectively
    /// [`Progress::advance`] through; `notify` observes every advance with
    /// the global `(done, total)` and may be called concurrently from
    /// several workers.
    pub fn run_with_progress<J, R, F, P>(
        &self,
        jobs: Vec<J>,
        total_units: u64,
        notify: P,
        run: F,
    ) -> Vec<R>
    where
        J: Send,
        R: Send,
        F: Fn(usize, J, &Progress) -> R + Sync,
        P: Fn(u64, u64) + Sync,
    {
        let job_count = jobs.len();
        let done = AtomicU64::new(0);
        let workers = self.threads.min(job_count).max(1);

        if workers == 1 {
            // Inline fast path: no threads, no locks — and the reference
            // behaviour the parallel path must reproduce bit-for-bit.
            let progress = Progress {
                done: &done,
                total: total_units,
                notify: &notify,
            };
            return jobs
                .into_iter()
                .enumerate()
                .map(|(index, job)| run(index, job, &progress))
                .collect();
        }

        // Each pending job and result slot sits behind its own mutex; a
        // worker claims a job by bumping the shared cursor, so every lock
        // is uncontended and held only for a take/store.
        let slots: Vec<Mutex<Option<J>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..job_count).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let progress = Progress {
                        done: &done,
                        total: total_units,
                        notify: &notify,
                    };
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= job_count {
                            break;
                        }
                        let job = slots[index]
                            .lock()
                            .expect("job slot poisoned")
                            .take()
                            .expect("each index is claimed exactly once");
                        let result = run(index, job, &progress);
                        *results[index].lock().expect("result slot poisoned") = Some(result);
                    }
                });
            }
        });

        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("scope joined every worker, so every slot is filled")
            })
            .collect()
    }
}

impl Default for Executor {
    /// Defaults to the serial executor, matching the library's
    /// deterministic-by-default posture.
    fn default() -> Self {
        Self::serial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::derive_rng;
    use rand::RngCore;

    #[test]
    fn results_arrive_in_job_order() {
        let exec = Executor::new(8);
        let out = exec.run((0..100usize).collect(), |index, job| {
            assert_eq!(index, job);
            job * 3
        });
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial_for_seeded_jobs() {
        // The contract that makes sweep parallelism sound: per-cell derived
        // RNG streams make results independent of scheduling.
        let jobs: Vec<u64> = (0..40).collect();
        let work = |index: usize, _job: u64| {
            let mut rng = derive_rng(0xFA12, index, 0);
            (0..100)
                .map(|_| rng.next_u64())
                .fold(0u64, u64::wrapping_add)
        };
        let serial = Executor::serial().run(jobs.clone(), work);
        let parallel = Executor::new(8).run(jobs, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn progress_counts_every_unit() {
        let total = AtomicU64::new(0);
        let peak = AtomicU64::new(0);
        Executor::new(4).run_with_progress(
            vec![5u64; 12],
            60,
            |done, grid_total| {
                assert_eq!(grid_total, 60);
                peak.fetch_max(done, Ordering::Relaxed);
            },
            |_, units, progress| {
                for _ in 0..units {
                    progress.advance(1);
                }
                total.fetch_add(units, Ordering::Relaxed);
            },
        );
        assert_eq!(total.load(Ordering::Relaxed), 60);
        assert_eq!(peak.load(Ordering::Relaxed), 60);
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let exec = Executor::new(0);
        assert!(exec.threads() >= 1);
        assert_eq!(Executor::serial().threads(), 1);
        assert_eq!(Executor::default(), Executor::serial());
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let out = Executor::new(64).run(vec![1, 2, 3], |_, v| v * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn empty_grid() {
        let out: Vec<u32> = Executor::new(4).run(Vec::<u32>::new(), |_, v| v);
        assert!(out.is_empty());
    }
}
