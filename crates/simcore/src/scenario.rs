//! Scripted-event scenarios: deterministic overlay shocks on a timeline.
//!
//! The churn subsystem models *statistical* membership dynamics (every node
//! follows its own renewal process). Scenarios model *scripted* dynamics:
//! "at step 500, this exact set of nodes joins/leaves" — flash crowds,
//! correlated regional outages, adversarial departures. This module holds
//! the substrate-agnostic half of that machinery:
//!
//! * [`EventScript`] — an ordered, composable stream of [`ScriptEvent`]s
//!   (join/leave of a node index at a step), built by scenario compilers
//!   and merged into a churn plan for replay;
//! * [`CapacityPlan`] — per-node bandwidth budgets (chunks forwarded per
//!   step), the heterogeneity axis that download scheduling honors.
//!
//! Everything here is index-based (`usize` node slots, `u64` steps) so the
//! engine stays independent of the overlay substrate; the kademlia/churn
//! layers translate node ids. Like every other stochastic concern, scenario
//! randomness forks off the master seed through
//! [`rng::sub_seed`](crate::rng::sub_seed) with
//! [`rng::domain::SCENARIO`](crate::rng::domain::SCENARIO), so a scenario
//! is a pure function of `(config, seed)`.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::rng::SimRng;

/// What a scripted event does to its node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScriptEventKind {
    /// The node joins (or rejoins) the overlay at its original address.
    Join,
    /// The node leaves the overlay.
    Leave,
}

/// One scripted membership change, scheduled against a simulation step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScriptEvent {
    /// Step (1-based) at which the event fires, before that step's
    /// downloads.
    pub step: u64,
    /// Dense node index (the overlay layer's `NodeId`).
    pub node: usize,
    /// Join or leave.
    pub kind: ScriptEventKind,
}

/// A deterministic, composable schedule of scripted membership events.
///
/// Scripts are *specifications*, not guaranteed outcomes: composing a
/// script into a replayable plan runs a consistency sweep (a node can only
/// leave while live and join while down, and a structural live floor is
/// enforced), so conflicting or redundant events are dropped there, not
/// here. Within one step, events replay in `(node, leaves-before-joins)`
/// order regardless of insertion order, which is what makes merged scripts
/// independent of composition order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventScript {
    events: Vec<ScriptEvent>,
}

impl EventScript {
    /// An empty script.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one event.
    pub fn push(&mut self, event: ScriptEvent) {
        self.events.push(event);
    }

    /// Schedules `node` to join at `step`.
    pub fn join(&mut self, step: u64, node: usize) {
        self.push(ScriptEvent {
            step,
            node,
            kind: ScriptEventKind::Join,
        });
    }

    /// Schedules `node` to leave at `step`.
    pub fn leave(&mut self, step: u64, node: usize) {
        self.push(ScriptEvent {
            step,
            node,
            kind: ScriptEventKind::Leave,
        });
    }

    /// Schedules every node in `nodes` to leave at `step` (a correlated
    /// outage).
    pub fn mass_leave<I: IntoIterator<Item = usize>>(&mut self, step: u64, nodes: I) {
        for node in nodes {
            self.leave(step, node);
        }
    }

    /// Schedules every node in `nodes` to join at `step` (a flash crowd).
    pub fn mass_join<I: IntoIterator<Item = usize>>(&mut self, step: u64, nodes: I) {
        for node in nodes {
            self.join(step, node);
        }
    }

    /// Merges another script into this one.
    pub fn merge(&mut self, other: &EventScript) {
        self.events.extend_from_slice(&other.events);
    }

    /// The events in canonical replay order: by step, then node, leaves
    /// before joins. The order is a pure function of the event *set*, so
    /// two scripts assembled in different orders normalize identically.
    pub fn sorted_events(&self) -> Vec<ScriptEvent> {
        let mut events = self.events.clone();
        events.sort_unstable_by_key(|e| (e.step, e.node, matches!(e.kind, ScriptEventKind::Join)));
        events.dedup();
        events
    }

    /// The raw events in insertion order.
    pub fn events(&self) -> &[ScriptEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the script schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The latest step any event fires at (0 for an empty script).
    pub fn max_step(&self) -> u64 {
        self.events.iter().map(|e| e.step).max().unwrap_or(0)
    }
}

/// Per-node bandwidth budgets: how many chunks each node may forward per
/// simulation step.
///
/// The paper's model gives every node unlimited capacity; real deployments
/// are heterogeneous (home uplinks next to datacenter peers), and capacity
/// interacts with session workload — a saturated node stops serving until
/// the next step. Budgets are plain data here; enforcement lives in the
/// storage layer's download scheduling.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapacityPlan {
    budgets: Vec<u64>,
}

impl CapacityPlan {
    /// Every node gets the same per-step budget (clamped to at least 1).
    pub fn uniform(nodes: usize, budget: u64) -> Self {
        Self {
            budgets: vec![budget.max(1); nodes],
        }
    }

    /// A two-tier population: each node is independently *slow* with
    /// probability `slow_fraction` (budget `slow`), otherwise *fast*
    /// (budget `fast`). Budgets are clamped to at least 1 so no node is
    /// structurally dead. Deterministic given the RNG stream — pass a
    /// [`sub_rng`](crate::rng::sub_rng)-derived stream.
    pub fn two_tier(
        nodes: usize,
        slow_fraction: f64,
        slow: u64,
        fast: u64,
        rng: &mut SimRng,
    ) -> Self {
        let slow_fraction = slow_fraction.clamp(0.0, 1.0);
        let budgets = (0..nodes)
            .map(|_| {
                if rng.gen_bool(slow_fraction) {
                    slow.max(1)
                } else {
                    fast.max(1)
                }
            })
            .collect();
        Self { budgets }
    }

    /// Wraps explicit per-node budgets (clamped to at least 1).
    pub fn from_budgets(budgets: Vec<u64>) -> Self {
        Self {
            budgets: budgets.into_iter().map(|b| b.max(1)).collect(),
        }
    }

    /// The budget of one node slot.
    pub fn budget(&self, node: usize) -> u64 {
        self.budgets.get(node).copied().unwrap_or(u64::MAX)
    }

    /// All budgets, indexed by node slot.
    pub fn budgets(&self) -> &[u64] {
        &self.budgets
    }

    /// Number of node slots covered.
    pub fn len(&self) -> usize {
        self.budgets.len()
    }

    /// Whether the plan covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.budgets.is_empty()
    }

    /// Mean per-node budget.
    pub fn mean(&self) -> f64 {
        if self.budgets.is_empty() {
            return 0.0;
        }
        self.budgets.iter().map(|&b| b as f64).sum::<f64>() / self.budgets.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{domain, sub_rng};

    #[test]
    fn scripts_normalize_independent_of_insertion_order() {
        let mut a = EventScript::new();
        a.join(5, 2);
        a.leave(3, 7);
        a.leave(5, 1);
        let mut b = EventScript::new();
        b.leave(5, 1);
        b.leave(3, 7);
        b.join(5, 2);
        assert_eq!(a.sorted_events(), b.sorted_events());
        let sorted = a.sorted_events();
        assert_eq!(sorted[0].step, 3);
        assert_eq!(sorted[1].node, 1);
        assert_eq!(a.len(), 3);
        assert_eq!(a.max_step(), 5);
        assert!(!a.is_empty());
    }

    #[test]
    fn leaves_sort_before_joins_of_the_same_node_and_step() {
        let mut s = EventScript::new();
        s.join(4, 9);
        s.leave(4, 9);
        let sorted = s.sorted_events();
        assert_eq!(sorted[0].kind, ScriptEventKind::Leave);
        assert_eq!(sorted[1].kind, ScriptEventKind::Join);
    }

    #[test]
    fn duplicate_events_deduplicate() {
        let mut s = EventScript::new();
        s.leave(2, 3);
        s.leave(2, 3);
        assert_eq!(s.sorted_events().len(), 1);
    }

    #[test]
    fn mass_operations_and_merge() {
        let mut outage = EventScript::new();
        outage.mass_leave(10, [1, 2, 3]);
        let mut crowd = EventScript::new();
        crowd.mass_join(20, [4, 5]);
        outage.merge(&crowd);
        assert_eq!(outage.len(), 5);
        assert_eq!(outage.max_step(), 20);
        assert_eq!(
            outage
                .sorted_events()
                .iter()
                .filter(|e| e.kind == ScriptEventKind::Join)
                .count(),
            2
        );
    }

    #[test]
    fn empty_script() {
        let s = EventScript::new();
        assert!(s.is_empty());
        assert_eq!(s.max_step(), 0);
        assert!(s.sorted_events().is_empty());
        assert!(s.events().is_empty());
    }

    #[test]
    fn two_tier_capacities_are_deterministic_and_clamped() {
        let plan = |seed: u64| {
            let mut rng = sub_rng(seed, domain::SCENARIO);
            CapacityPlan::two_tier(500, 0.3, 0, 64, &mut rng)
        };
        let a = plan(7);
        assert_eq!(a, plan(7));
        assert_ne!(a, plan(8));
        assert_eq!(a.len(), 500);
        // Zero budgets clamp to 1; both tiers appear at this fraction.
        assert!(a.budgets().iter().all(|&b| b == 1 || b == 64));
        assert!(a.budgets().contains(&1));
        assert!(a.budgets().contains(&64));
        assert!(a.mean() > 1.0 && a.mean() < 64.0);
    }

    #[test]
    fn capacity_plan_accessors() {
        let plan = CapacityPlan::uniform(4, 8);
        assert_eq!(plan.budgets(), &[8, 8, 8, 8]);
        assert_eq!(plan.budget(2), 8);
        // Out-of-range slots are unconstrained rather than dead.
        assert_eq!(plan.budget(99), u64::MAX);
        assert!(!plan.is_empty());
        assert_eq!(plan.mean(), 8.0);

        let explicit = CapacityPlan::from_budgets(vec![0, 5]);
        assert_eq!(explicit.budgets(), &[1, 5]);
        assert_eq!(CapacityPlan::uniform(0, 3).mean(), 0.0);
    }
}
