//! Deterministic RNG streams.

use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// The RNG handed to policies and state updates.
///
/// ChaCha12 is portable and reproducible across platforms and Rust
/// versions, unlike [`rand::rngs::StdRng`], whose algorithm is not
/// stability-guaranteed. The paper fixes one seed for all experiments; a
/// stable generator is what makes that meaningful.
pub type SimRng = ChaCha12Rng;

/// Derives an independent RNG stream for one `(seed, param_index, run)`
/// cell of a sweep.
///
/// Uses SplitMix64-style avalanche mixing so that neighbouring runs and
/// parameter indices produce statistically unrelated streams.
pub fn derive_rng(seed: u64, param_index: usize, run: u32) -> SimRng {
    let mut x = seed
        ^ (param_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ u64::from(run).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    // SplitMix64 finalizer.
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    ChaCha12Rng::seed_from_u64(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn same_cell_same_stream() {
        let mut a = derive_rng(1, 2, 3);
        let mut b = derive_rng(1, 2, 3);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_cells_differ() {
        let base: Vec<u64> = {
            let mut r = derive_rng(1, 0, 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        for (seed, param, run) in [(2, 0, 0), (1, 1, 0), (1, 0, 1)] {
            let mut r = derive_rng(seed, param, run);
            let other: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
            assert_ne!(base, other, "cell ({seed},{param},{run})");
        }
    }
}
