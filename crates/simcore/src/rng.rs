//! Deterministic RNG streams.

use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// The RNG handed to policies and state updates.
///
/// ChaCha12 is portable and reproducible across platforms and Rust
/// versions, unlike [`rand::rngs::StdRng`], whose algorithm is not
/// stability-guaranteed. The paper fixes one seed for all experiments; a
/// stable generator is what makes that meaningful.
pub type SimRng = ChaCha12Rng;

/// Derives an independent RNG stream for one `(seed, param_index, run)`
/// cell of a sweep.
///
/// Uses SplitMix64-style avalanche mixing so that neighbouring runs and
/// parameter indices produce statistically unrelated streams.
pub fn derive_rng(seed: u64, param_index: usize, run: u32) -> SimRng {
    ChaCha12Rng::seed_from_u64(mix(seed
        ^ (param_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ u64::from(run).wrapping_mul(0xBF58_476D_1CE4_E5B9)))
}

/// Named domains for [`sub_seed`] / [`sub_rng`].
///
/// Every concern that forks its own RNG stream off a simulation's master
/// seed gets one tag here, replacing the magic offsets
/// (`0x5EED_F00D`-style constants) that used to be scattered across the
/// consuming crates. Two domains never collide after mixing, and adding a
/// new concern is one new constant instead of a new ad-hoc offset.
pub mod domain {
    /// Topology construction (address sampling and bucket filling).
    pub const TOPOLOGY: u64 = 0x01;
    /// Workload generation (originator pool, file sizes, chunk draws).
    pub const WORKLOAD: u64 = 0x02;
    /// Free-rider sampling.
    pub const FREE_RIDERS: u64 = 0x03;
    /// Churn plan generation (session/downtime lifetimes).
    pub const CHURN: u64 = 0x04;
    /// Departure-order shuffles in epoch-style churn experiments.
    pub const DEPARTURES: u64 = 0x05;
    /// Scenario compilation (region anchors, capacity tiers, cohort
    /// sampling).
    pub const SCENARIO: u64 = 0x06;
    /// Fuzz-campaign mutation scheduling (parent selection, axis choice,
    /// candidate seeds). Keeping the fuzzer in its own domain means a fuzz
    /// campaign seeded with a config's master seed can never replay the
    /// streams that built that config's topology or workload.
    pub const FUZZ: u64 = 0x07;
}

/// Derives the sub-seed of one `domain` (see [`domain`]) from a master
/// seed.
///
/// The derivation is an avalanche mix, not an additive offset: every bit of
/// the master seed influences every bit of each sub-seed, and sub-seeds of
/// neighbouring master seeds share no structure. The derivation is
/// tagged (fixed constant plus a multiplier distinct from
/// [`derive_rng`]'s) so that a domain sub-stream can never alias the
/// engine's `(param_index, run)` cell streams for the same master seed —
/// otherwise a sweep cell would replay the stream that sampled e.g. the
/// workload pool.
pub fn sub_seed(master: u64, domain: u64) -> u64 {
    // Tag separating the domain-fork keyspace from cell streams (which
    // have no tag), plus Murmur3's finalizer multiplier instead of
    // `derive_rng`'s golden-ratio constant.
    const DOMAIN_TAG: u64 = 0x5FAB_1E5C_0FFE_E000;
    mix(master ^ DOMAIN_TAG ^ domain.wrapping_mul(0xFF51_AFD7_ED55_8CCD))
}

/// A fresh RNG stream for one `domain` of a master seed — the one way all
/// crates fork sub-RNGs (topology vs workload vs churn, ...).
pub fn sub_rng(master: u64, domain: u64) -> SimRng {
    ChaCha12Rng::seed_from_u64(sub_seed(master, domain))
}

/// SplitMix64 finalizer.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn same_cell_same_stream() {
        let mut a = derive_rng(1, 2, 3);
        let mut b = derive_rng(1, 2, 3);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn sub_seeds_separate_domains() {
        let master = 0xFA12;
        let mut seen = std::collections::HashSet::new();
        for d in [
            domain::TOPOLOGY,
            domain::WORKLOAD,
            domain::FREE_RIDERS,
            domain::CHURN,
            domain::DEPARTURES,
            domain::SCENARIO,
            domain::FUZZ,
        ] {
            assert!(seen.insert(sub_seed(master, d)), "domain {d} collides");
            assert_ne!(sub_seed(master, d), master);
        }
        // Stable across calls, sensitive to the master seed.
        assert_eq!(
            sub_seed(master, domain::CHURN),
            sub_seed(master, domain::CHURN)
        );
        assert_ne!(
            sub_seed(master, domain::CHURN),
            sub_seed(master + 1, domain::CHURN)
        );
        let mut a = sub_rng(master, domain::WORKLOAD);
        let mut b = sub_rng(master, domain::WORKLOAD);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn sub_seeds_never_alias_cell_streams() {
        // A domain sub-stream must differ from every small engine cell
        // stream of the same master seed (they use distinct derivations).
        for master in [0u64, 1, 0xFA12, u64::MAX] {
            for d in 0..8u64 {
                for p in 0..8usize {
                    let mut cell = derive_rng(master, p, 0);
                    let mut sub = sub_rng(master, d);
                    assert_ne!(
                        cell.next_u64(),
                        sub.next_u64(),
                        "domain {d} aliases cell {p} for master {master:#x}"
                    );
                }
            }
        }
    }

    #[test]
    fn different_cells_differ() {
        let base: Vec<u64> = {
            let mut r = derive_rng(1, 0, 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        for (seed, param, run) in [(2, 0, 0), (1, 1, 0), (1, 0, 1)] {
            let mut r = derive_rng(seed, param, run);
            let other: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
            assert_ne!(base, other, "cell ({seed},{param},{run})");
        }
    }
}
