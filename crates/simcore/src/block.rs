//! Partial state update blocks.

use crate::engine::StepInfo;
use crate::rng::SimRng;

type PolicyFn<S, P, G> = Box<dyn Fn(&mut SimRng, &StepInfo, &P, &S) -> G>;
type UpdateFn<S, P, G> = Box<dyn Fn(&mut SimRng, &StepInfo, &P, &S, &[G], &mut S)>;

/// One cadCAD *partial state update block*: a set of policies that read the
/// pre-block state and emit signals of type `G`, followed by state update
/// functions that consume all signals in order.
///
/// Semantics mirror cadCAD exactly:
///
/// * all policies of a block observe the **same pre-block state**;
/// * update functions run **sequentially**, each seeing the mutations of the
///   previous one (but the *signals* were computed against the pre-block
///   state);
/// * blocks run in the order they were added, one *substep* each.
pub struct Block<S, P, G> {
    name: String,
    policies: Vec<PolicyFn<S, P, G>>,
    updates: Vec<UpdateFn<S, P, G>>,
}

impl<S, P, G> Block<S, P, G> {
    /// Creates an empty block with a diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            policies: Vec::new(),
            updates: Vec::new(),
        }
    }

    /// The block's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a policy: `(rng, step, params, pre_state) -> signal`.
    #[must_use]
    pub fn policy<F>(mut self, f: F) -> Self
    where
        F: Fn(&mut SimRng, &StepInfo, &P, &S) -> G + 'static,
    {
        self.policies.push(Box::new(f));
        self
    }

    /// Adds a state update: `(rng, step, params, pre_state, signals, state)`.
    /// `pre_state` is the state as of the start of the block; `state` is the
    /// in-progress post-state to mutate.
    #[must_use]
    pub fn update<F>(mut self, f: F) -> Self
    where
        F: Fn(&mut SimRng, &StepInfo, &P, &S, &[G], &mut S) + 'static,
    {
        self.updates.push(Box::new(f));
        self
    }

    /// Number of policies.
    pub fn policy_count(&self) -> usize {
        self.policies.len()
    }

    /// Number of update functions.
    pub fn update_count(&self) -> usize {
        self.updates.len()
    }

    /// Executes the block once against `state`.
    pub(crate) fn execute(&self, rng: &mut SimRng, info: &StepInfo, params: &P, state: &mut S)
    where
        S: Clone,
    {
        let pre_state = state.clone();
        let signals: Vec<G> = self
            .policies
            .iter()
            .map(|p| p(rng, info, params, &pre_state))
            .collect();
        for update in &self.updates {
            update(rng, info, params, &pre_state, &signals, state);
        }
    }
}

impl<S, P, G> std::fmt::Debug for Block<S, P, G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Block")
            .field("name", &self.name)
            .field("policies", &self.policies.len())
            .field("updates", &self.updates.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::derive_rng;

    fn info() -> StepInfo {
        StepInfo {
            param_index: 0,
            run: 0,
            timestep: 1,
            substep: 0,
        }
    }

    #[test]
    fn policies_see_pre_block_state() {
        // Two policies and two updates; the second policy must observe the
        // state before any update ran.
        let block = Block::<i64, (), i64>::new("b")
            .policy(|_, _, _, s| *s)
            .policy(|_, _, _, s| *s * 10)
            .update(|_, _, _, _pre, signals, s| *s += signals[0])
            .update(|_, _, _, _pre, signals, s| *s += signals[1]);
        let mut state = 1i64;
        let mut rng = derive_rng(0, 0, 0);
        block.execute(&mut rng, &info(), &(), &mut state);
        // signals = [1, 10]; state = 1 + 1 + 10.
        assert_eq!(state, 12);
    }

    #[test]
    fn updates_apply_sequentially() {
        let block = Block::<Vec<i64>, (), ()>::new("seq")
            .update(|_, _, _, _, _, s| s.push(1))
            .update(|_, _, _, _, _, s| {
                let last = *s.last().unwrap();
                s.push(last + 1);
            });
        let mut state = Vec::new();
        let mut rng = derive_rng(0, 0, 0);
        block.execute(&mut rng, &info(), &(), &mut state);
        assert_eq!(state, vec![1, 2]);
    }

    #[test]
    fn pre_state_passed_to_updates() {
        let block = Block::<i64, (), ()>::new("pre")
            .update(|_, _, _, _, _, s| *s = 100)
            .update(|_, _, _, pre, _, s| *s += *pre);
        let mut state = 7i64;
        let mut rng = derive_rng(0, 0, 0);
        block.execute(&mut rng, &info(), &(), &mut state);
        assert_eq!(state, 107);
    }

    #[test]
    fn debug_and_counters() {
        let block = Block::<(), (), ()>::new("named").policy(|_, _, _, _| ());
        assert_eq!(block.name(), "named");
        assert_eq!(block.policy_count(), 1);
        assert_eq!(block.update_count(), 0);
        assert!(format!("{block:?}").contains("named"));
    }
}
