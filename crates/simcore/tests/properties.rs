//! Property-based tests for the cadCAD-style engine semantics.

use fairswap_simcore::{derive_rng, Block, Simulation, TrajectoryRecorder};
use proptest::prelude::*;
use rand::Rng;

proptest! {
    /// Engine determinism: identical (timesteps, runs, seed) yield
    /// identical trajectories, even with RNG-dependent policies.
    #[test]
    fn engine_is_deterministic(timesteps in 1u64..40, runs in 1u32..4, seed in any::<u64>()) {
        let run_once = || {
            let block = Block::<u64, (), u64>::new("mix")
                .policy(|rng, _, _, _| rng.gen::<u64>() >> 32)
                .update(|_, _, _, _, signals, s| *s = s.wrapping_mul(31).wrapping_add(signals[0]));
            Simulation::new(timesteps, runs, seed)
                .block(block)
                .run_sweep(&[()], |_, _| 0u64)
                .into_traces()
                .into_iter()
                .map(|t| t.final_state)
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run_once(), run_once());
    }

    /// Trace layout: param-major then run-major ordering; trace() lookup
    /// agrees with linear position.
    #[test]
    fn trace_layout_is_param_major(params_n in 1usize..5, runs in 1u32..5) {
        let block = Block::<(usize, u32), usize, ()>::new("id")
            .update(|_, info, _, _, _, s| *s = (info.param_index, info.run));
        let params: Vec<usize> = (0..params_n).collect();
        let results = Simulation::new(1, runs, 0)
            .block(block)
            .run_sweep(&params, |_, _| (usize::MAX, u32::MAX));
        prop_assert_eq!(results.traces().len(), params_n * runs as usize);
        for p in 0..params_n {
            for r in 0..runs {
                let trace = results.trace(p, r).expect("cell exists");
                prop_assert_eq!(trace.final_state, (p, r));
                prop_assert_eq!(trace.param_index, p);
                prop_assert_eq!(trace.run, r);
            }
        }
        prop_assert!(results.trace(params_n, 0).is_none());
        prop_assert!(results.trace(0, runs).is_none());
    }

    /// Additivity over timesteps: a pure accumulation model's final state
    /// is exactly timesteps × increment, independent of runs and seed.
    #[test]
    fn accumulation_is_exact(
        timesteps in 0u64..200,
        increment in -1000i64..1000,
        seed in any::<u64>(),
    ) {
        let block = Block::<i64, i64, i64>::new("add")
            .policy(|_, _, p, _| *p)
            .update(|_, _, _, _, signals, s| *s += signals[0]);
        let result = Simulation::new(timesteps, 1, seed)
            .block(block)
            .run_sweep(&[increment], |_, _| 0i64);
        prop_assert_eq!(
            result.trace(0, 0).expect("cell exists").final_state,
            timesteps as i64 * increment
        );
    }

    /// The recorder sees exactly the states after each timestep, in order.
    #[test]
    fn recorder_sees_every_post_step_state(timesteps in 1u64..60) {
        let block = Block::<u64, (), ()>::new("count")
            .update(|_, _, _, _, _, s| *s += 1);
        let mut recorder = TrajectoryRecorder::every(1);
        Simulation::new(timesteps, 1, 0)
            .block(block)
            .run_sweep_recorded(&[()], |_, _| 0u64, &mut recorder);
        let states: Vec<u64> = recorder.snapshots().iter().map(|(_, s)| *s).collect();
        let expected: Vec<u64> = (1..=timesteps).collect();
        prop_assert_eq!(states, expected);
    }

    /// RNG stream derivation: distinct cells give distinct streams, and the
    /// derivation is a pure function.
    #[test]
    fn rng_derivation_is_pure_and_distinct(seed in any::<u64>(), p in 0usize..16, r in 0u32..16) {
        use rand::RngCore;
        let a: Vec<u64> = { let mut g = derive_rng(seed, p, r); (0..4).map(|_| g.next_u64()).collect() };
        let b: Vec<u64> = { let mut g = derive_rng(seed, p, r); (0..4).map(|_| g.next_u64()).collect() };
        prop_assert_eq!(&a, &b);
        let c: Vec<u64> = { let mut g = derive_rng(seed, p + 1, r); (0..4).map(|_| g.next_u64()).collect() };
        prop_assert_ne!(&a, &c);
    }
}
