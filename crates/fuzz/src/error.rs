//! Fuzzing error type.

use std::fmt;

use fairswap_core::CoreError;

/// Everything that can go wrong while fuzzing.
#[derive(Debug)]
pub enum FuzzError {
    /// A filesystem operation on the corpus or report failed.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error.
        message: String,
    },
    /// A corpus file did not parse as a `SimSpec`.
    Corpus {
        /// The offending file.
        file: String,
        /// The parse error.
        message: String,
    },
    /// The engine rejected or failed a run.
    Core(CoreError),
}

impl fmt::Display for FuzzError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { path, message } => write!(f, "fuzz i/o error at {path}: {message}"),
            Self::Corpus { file, message } => {
                write!(f, "corpus entry {file} is not a valid spec: {message}")
            }
            Self::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FuzzError {}

impl From<CoreError> for FuzzError {
    fn from(e: CoreError) -> Self {
        Self::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_path_and_file() {
        let io = FuzzError::Io {
            path: "/tmp/x".into(),
            message: "denied".into(),
        };
        assert!(io.to_string().contains("/tmp/x"));
        let corpus = FuzzError::Corpus {
            file: "bad.json".into(),
            message: "eof".into(),
        };
        assert!(corpus.to_string().contains("bad.json"));
        let core: FuzzError = CoreError::InvalidConfig {
            message: "nope".into(),
        }
        .into();
        assert!(core.to_string().contains("nope"));
    }
}
