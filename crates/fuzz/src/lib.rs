//! Coverage-guided scenario fuzzing for the fairswap simulator.
//!
//! Point-wise tests pin the configurations the paper names; this crate
//! searches the configuration space *between* them. It follows the
//! classic fuzzer decomposition — corpus, mutator, feedback, oracle —
//! with the simulator's own wire format as the input language:
//!
//! * [`corpus`] — named [`SimSpec`](fairswap_core::SimSpec)s persisted
//!   one-per-file in the exact shape `fairswap run --config` executes,
//!   so every entry replays without the fuzzer.
//! * [`mutate`] — single-axis spec perturbations drawn from curated
//!   always-valid sets (topology, workload, churn, scenario, policies,
//!   popularity, economics).
//! * [`feedback`] — a coarse-binned (Gini × drop rate × mean hops ×
//!   cache-hit rate) behavior grid; a candidate is kept iff it lights a
//!   novel cell.
//! * [`oracle`] — invariant predicates over finished runs: reward
//!   conservation, settlement imbalance, routing livelock, capacity
//!   accounting, and the paper's k = 20 vs k = 4 fairness ordering.
//! * [`campaign`] — the deterministic driver gluing the four together
//!   on the shared [`Executor`](fairswap_core::Executor): same
//!   `--seed` and `--iters`, same corpus and findings, bit for bit,
//!   at any thread count.
//!
//! ```
//! use fairswap_core::Executor;
//! use fairswap_fuzz::{run_campaign, FuzzConfig};
//!
//! let executor = Executor::new(1);
//! let outcome = run_campaign(
//!     &executor,
//!     &FuzzConfig::new(0xF122, 2),
//!     &mut |_done, _total| {},
//! )?;
//! assert!(outcome.corpus.len() >= 6); // seeds survive into the output
//! # Ok::<(), fairswap_fuzz::FuzzError>(())
//! ```

pub mod campaign;
pub mod corpus;
pub mod error;
pub mod feedback;
pub mod mutate;
pub mod oracle;

pub use campaign::{
    minimize_corpus, run_campaign, Finding, FuzzConfig, FuzzOutcome, MinimizeOutcome, TWIN_KS,
};
pub use corpus::{Corpus, CorpusEntry};
pub use error::FuzzError;
pub use feedback::{cell_for, Cell, MetricGrid};
pub use mutate::{mutate_spec, reconcile, AXES};
pub use oracle::{check_report, fairness_inversion, RunMetrics, Violation, ORACLE_NAMES};
