//! Invariant oracles: the hard "this must never happen" predicates.
//!
//! Each oracle is a pure predicate over a [`RunMetrics`] view extracted
//! from a finished [`SimReport`] — pure so that every oracle can be
//! unit-tested against hand-crafted metric views (one violating and one
//! passing case each) without running a simulation. A false-positive
//! oracle would poison the corpus with "finds" that reproduce nothing,
//! so the predicates are deliberately conservative: every one of them
//! encodes an invariant the integration suite already pins point-wise.
//!
//! The catalog (see `docs/FUZZING.md`):
//!
//! | Oracle | Invariant |
//! |--------|-----------|
//! | `reward-conservation` | paid income ≡ ledger settlement volume (Swarm / pay-all-hops, tx-free, no free riders) |
//! | `settlement-imbalance` | Σ net income ∈ [volume − tx costs, volume] |
//! | `routing-livelock` | max hops ≤ bits + max detours (greedy strictly descends XOR distance) |
//! | `capacity-accounting` | delivered + stuck = requests, capacity blocks ⊆ stuck, one hop record per delivery |
//! | `fairness-inversion` | F2 Gini at k = 20 not worse than at k = 4 on the same spec |
//! | `durability-stall` | with active re-replication, no region stays unreachable longer than half the run |

use fairswap_core::{MechanismKind, SimReport};

/// Everything the oracles need to know about one finished run, extracted
/// from the report's public accessors. Constructible by hand in tests.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Address-space bit width of the run.
    pub bits: u32,
    /// Incentive mechanism id (`"swarm"`, `"pay-all-hops"`, ...).
    pub mechanism: &'static str,
    /// Whether settlements were charged a transaction cost.
    pub tx_cost_zero: bool,
    /// Configured free-rider fraction.
    pub free_rider_fraction: f64,
    /// Detour budget of the routing policy (0 under greedy).
    pub max_detours: usize,
    /// Sum of per-node paid income in accounting units.
    pub income_sum: f64,
    /// Total BZZ moved by ledger settlements.
    pub settlement_volume: u64,
    /// Total transaction costs charged across settlements.
    pub settlement_tx_cost: u64,
    /// Sum of per-node net BZZ income after transaction costs.
    pub net_income_sum: u64,
    /// Settlements forced by frozen channels (those settle ledger volume
    /// without crediting mechanism income).
    pub forced_settlements: u64,
    /// Total chunk requests issued.
    pub requests: u64,
    /// Requests that never reached a storer.
    pub stuck: u64,
    /// Stuck requests dropped at a capacity-saturated hop.
    pub capacity_blocked: u64,
    /// Routes recorded in the hop histogram (one per delivered chunk).
    pub delivered_routes: u64,
    /// Largest observed hop count.
    pub max_hops: usize,
    /// Mean hop count over delivered chunks.
    pub mean_hops: f64,
    /// F2 income Gini of the run.
    pub f2_gini: f64,
    /// Total cache hits.
    pub cache_hits: u64,
    /// Whether the run's repair policy generates repair traffic
    /// (`ReReplicate`; `Monitor` only accounts loss).
    pub repair_active: bool,
    /// Steps (files) the run simulated.
    pub steps: u64,
    /// Longest observed unreachable span in steps — over completed
    /// repairs and regions still lost at run end alike.
    pub repair_wait_max: u64,
    /// Address regions still unreachable when the run ended.
    pub unreachable: u64,
}

impl RunMetrics {
    /// Extracts the oracle view from a finished report.
    pub fn from_report(report: &SimReport) -> Self {
        let config = report.config();
        let requests: u64 = report.traffic().requests_issued().iter().sum();
        Self {
            bits: config.bits,
            mechanism: config.mechanism.id(),
            tx_cost_zero: config.tx_cost.is_zero(),
            free_rider_fraction: config.free_rider_fraction,
            max_detours: config.route.max_detours(),
            income_sum: report.incomes().iter().sum(),
            settlement_volume: report.settlement_volume(),
            settlement_tx_cost: report.settlement_tx_cost(),
            net_income_sum: report.net_income_bzz().iter().sum(),
            forced_settlements: report.forced_settlements(),
            requests,
            stuck: report.traffic().stuck_requests(),
            capacity_blocked: report.traffic().capacity_blocked(),
            delivered_routes: report.hops().total_routes(),
            max_hops: report.hops().max(),
            mean_hops: report.hops().mean().unwrap_or(0.0),
            f2_gini: report.f2_income_gini(),
            cache_hits: report.cache_hits(),
            repair_active: config.repair.repairs(),
            steps: config.files,
            repair_wait_max: report.traffic().repair_wait_max(),
            unreachable: report
                .churn()
                .and_then(|c| c.timeline.last())
                .map_or(0, |s| s.unreachable),
        }
    }

    /// Fraction of requests that were never delivered.
    pub fn drop_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.stuck as f64 / self.requests as f64
        }
    }

    /// Cache hits per issued request.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.requests as f64
        }
    }
}

/// One oracle violation: which invariant broke and how.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Violation {
    /// Stable oracle name (the catalog key in `docs/FUZZING.md`).
    pub oracle: String,
    /// Human-readable description of the breach.
    pub detail: String,
}

fn violation(oracle: &str, detail: String) -> Violation {
    Violation {
        oracle: oracle.to_string(),
        detail,
    }
}

/// `reward-conservation`: under ledger-settled mechanisms (Swarm,
/// pay-all-hops) with zero transaction cost and no free riders, the
/// mechanism's credited income must equal the ledger's settled volume —
/// the invariant `tests/` pins as `churned_incomes_match_ledger_volume`.
/// Forced settlements move ledger volume without crediting income, so
/// with any of those only the "income out of thin air" direction stays a
/// hard violation.
pub fn reward_conservation(m: &RunMetrics) -> Option<Violation> {
    if !matches!(m.mechanism, "swarm" | "pay-all-hops")
        || !m.tx_cost_zero
        || m.free_rider_fraction > 0.0
    {
        return None;
    }
    let income = m.income_sum.round() as u64;
    if income > m.settlement_volume {
        return Some(violation(
            "reward-conservation",
            format!(
                "credited income {income} exceeds settled volume {} (income minted outside the ledger)",
                m.settlement_volume
            ),
        ));
    }
    if m.forced_settlements == 0 && income != m.settlement_volume {
        return Some(violation(
            "reward-conservation",
            format!(
                "credited income {income} != settled volume {} with no forced settlements",
                m.settlement_volume
            ),
        ));
    }
    None
}

/// `settlement-imbalance`: ledger-internal consistency, mechanism
/// independent. Per-settlement netting is `max(amount − tx_cost, 0)`, so
/// the net-income sum must sit in `[volume − total tx costs, volume]`.
pub fn settlement_imbalance(m: &RunMetrics) -> Option<Violation> {
    if m.net_income_sum > m.settlement_volume {
        return Some(violation(
            "settlement-imbalance",
            format!(
                "net income {} exceeds gross settled volume {}",
                m.net_income_sum, m.settlement_volume
            ),
        ));
    }
    if m.net_income_sum + m.settlement_tx_cost < m.settlement_volume {
        return Some(violation(
            "settlement-imbalance",
            format!(
                "net income {} + tx costs {} below settled volume {} (settled BZZ vanished)",
                m.net_income_sum, m.settlement_tx_cost, m.settlement_volume
            ),
        ));
    }
    None
}

/// `routing-livelock`: greedy forwarding strictly increases the shared
/// prefix with the target every hop, so a route is at most `bits` hops;
/// capacity detours may add at most `max_detours` lateral hops on top.
/// A route longer than that cap means the walk revisited a region — a
/// routing livelock.
pub fn routing_livelock(m: &RunMetrics) -> Option<Violation> {
    let cap = m.bits as usize + m.max_detours;
    if m.delivered_routes > 0 && m.max_hops > cap {
        return Some(violation(
            "routing-livelock",
            format!(
                "observed a {}-hop route; cap is {} ({} bits + {} detours)",
                m.max_hops, cap, m.bits, m.max_detours
            ),
        ));
    }
    None
}

/// `capacity-accounting`: every issued request is either delivered (one
/// hop-histogram record) or stuck, and capacity blocks are a subset of
/// stuck requests.
pub fn capacity_accounting(m: &RunMetrics) -> Option<Violation> {
    if m.capacity_blocked > m.stuck {
        return Some(violation(
            "capacity-accounting",
            format!(
                "{} capacity blocks exceed {} stuck requests",
                m.capacity_blocked, m.stuck
            ),
        ));
    }
    if m.delivered_routes + m.stuck != m.requests {
        return Some(violation(
            "capacity-accounting",
            format!(
                "delivered {} + stuck {} != issued {}",
                m.delivered_routes, m.stuck, m.requests
            ),
        ));
    }
    None
}

/// Slack before a k = 20 vs k = 4 Gini gap counts as an inversion.
///
/// At quick fuzzing dimensions the two ginis are close on many specs;
/// the oracle only flags gaps large enough to survive replay.
pub const INVERSION_EPSILON: f64 = 0.02;

/// `fairness-inversion`: the paper's headline claim is that k = 20 is
/// *fairer* (lower F2 Gini) than k = 4. A spec where k = 20 comes out
/// more than [`INVERSION_EPSILON`] *less* fair inverts that claim —
/// not an accounting bug but an adversarial configuration worth keeping.
pub fn fairness_inversion(gini_k4: f64, gini_k20: f64) -> Option<Violation> {
    if gini_k20 > gini_k4 + INVERSION_EPSILON {
        return Some(violation(
            "fairness-inversion",
            format!(
                "F2 gini {gini_k20:.4} at k=20 exceeds {gini_k4:.4} at k=4 (k=20 is less fair here)"
            ),
        ));
    }
    None
}

/// Minimum run length before [`durability_stall`] applies: very short
/// runs don't give the backoff schedule room to recover legitimately.
pub const STALL_MIN_STEPS: u64 = 32;

/// `durability-stall`: repair re-uploads are scheduled before user
/// traffic each step and retry without limit under doubling backoff, so
/// with [`RepairPolicy::ReReplicate`](fairswap_core::RepairPolicy) active
/// a lost region should recover within a handful of attempts. A region
/// that stayed unreachable for more than half the run — whether it
/// eventually recovered or was still lost at the end — means the repair
/// loop stalled.
pub fn durability_stall(m: &RunMetrics) -> Option<Violation> {
    if !m.repair_active || m.steps < STALL_MIN_STEPS {
        return None;
    }
    if m.repair_wait_max > m.steps / 2 {
        return Some(violation(
            "durability-stall",
            format!(
                "a region stayed unreachable for {} of {} steps under active repair ({} regions still lost at run end)",
                m.repair_wait_max, m.steps, m.unreachable
            ),
        ));
    }
    None
}

/// Runs every per-report oracle on one run's metrics.
pub fn check_report(m: &RunMetrics) -> Vec<Violation> {
    [
        reward_conservation(m),
        settlement_imbalance(m),
        routing_livelock(m),
        capacity_accounting(m),
        durability_stall(m),
    ]
    .into_iter()
    .flatten()
    .collect()
}

/// A stable, multi-line rendering of the full oracle catalog for docs and
/// `fairswap fuzz` help output.
pub const ORACLE_NAMES: [&str; 6] = [
    "reward-conservation",
    "settlement-imbalance",
    "routing-livelock",
    "capacity-accounting",
    "fairness-inversion",
    "durability-stall",
];

/// Convenience: the mechanism ids the conservation oracle applies to.
pub fn conservation_applies(mechanism: MechanismKind) -> bool {
    matches!(mechanism, MechanismKind::Swarm | MechanismKind::PayAllHops)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A metrics view where every invariant holds.
    fn clean() -> RunMetrics {
        RunMetrics {
            bits: 16,
            mechanism: "swarm",
            tx_cost_zero: true,
            free_rider_fraction: 0.0,
            max_detours: 0,
            income_sum: 5000.0,
            settlement_volume: 5000,
            settlement_tx_cost: 0,
            net_income_sum: 5000,
            forced_settlements: 0,
            requests: 900,
            stuck: 100,
            capacity_blocked: 40,
            delivered_routes: 800,
            max_hops: 9,
            mean_hops: 2.4,
            f2_gini: 0.61,
            cache_hits: 25,
            repair_active: true,
            steps: 100,
            repair_wait_max: 12,
            unreachable: 0,
        }
    }

    #[test]
    fn clean_metrics_pass_every_oracle() {
        assert_eq!(check_report(&clean()), Vec::new());
    }

    #[test]
    fn reward_conservation_flags_minted_and_leaked_income() {
        // Violating: income the ledger never saw.
        let mut m = clean();
        m.income_sum = 5100.0;
        let v = reward_conservation(&m).expect("minted income");
        assert_eq!(v.oracle, "reward-conservation");
        assert!(v.detail.contains("5100"), "{}", v.detail);
        // Violating: volume settled that never became income, with no
        // forced settlement to explain it.
        let mut m = clean();
        m.income_sum = 4900.0;
        assert!(reward_conservation(&m).is_some());
        // Passing: the same deficit is explained by a forced settlement.
        m.forced_settlements = 1;
        assert!(reward_conservation(&m).is_none());
        // Passing: out of scope for minting mechanisms and free riders.
        let mut m = clean();
        m.income_sum = 9999.0;
        m.mechanism = "proof-of-bandwidth";
        assert!(reward_conservation(&m).is_none());
        let mut m = clean();
        m.income_sum = 4000.0;
        m.free_rider_fraction = 0.2;
        assert!(reward_conservation(&m).is_none());
    }

    #[test]
    fn settlement_imbalance_flags_both_directions() {
        // Violating: more net income than was ever settled.
        let mut m = clean();
        m.net_income_sum = 5001;
        let v = settlement_imbalance(&m).expect("overdrawn net income");
        assert_eq!(v.oracle, "settlement-imbalance");
        // Violating: settled BZZ vanished beyond the tx-cost explanation.
        let mut m = clean();
        m.net_income_sum = 4000;
        m.settlement_tx_cost = 500;
        assert!(settlement_imbalance(&m).is_some());
        // Passing: the deficit is exactly covered by tx costs (saturating
        // netting can also leave it smaller).
        let mut m = clean();
        m.net_income_sum = 4500;
        m.settlement_tx_cost = 500;
        assert!(settlement_imbalance(&m).is_none());
    }

    #[test]
    fn routing_livelock_flags_routes_past_the_cap() {
        // Violating: a 20-hop route in a 16-bit space with no detours.
        let mut m = clean();
        m.max_hops = 20;
        let v = routing_livelock(&m).expect("livelocked route");
        assert_eq!(v.oracle, "routing-livelock");
        assert!(v.detail.contains("20-hop"), "{}", v.detail);
        // Passing: the same hop count is legal once detours raise the cap.
        m.max_detours = 4;
        assert!(routing_livelock(&m).is_none());
        // Passing: no routes at all (nothing delivered) cannot livelock.
        let mut m = clean();
        m.delivered_routes = 0;
        m.max_hops = 99;
        assert!(routing_livelock(&m).is_none());
    }

    #[test]
    fn capacity_accounting_flags_leaks_and_superset_blocks() {
        // Violating: capacity blocks exceeding stuck requests.
        let mut m = clean();
        m.capacity_blocked = 101;
        let v = capacity_accounting(&m).expect("blocked > stuck");
        assert_eq!(v.oracle, "capacity-accounting");
        // Violating: a request neither delivered nor stuck.
        let mut m = clean();
        m.delivered_routes = 799;
        assert!(capacity_accounting(&m).is_some());
        // Passing: every request accounted for.
        assert!(capacity_accounting(&clean()).is_none());
    }

    #[test]
    fn fairness_inversion_needs_a_real_gap() {
        let v = fairness_inversion(0.50, 0.56).expect("clear inversion");
        assert_eq!(v.oracle, "fairness-inversion");
        assert!(v.detail.contains("0.5600"), "{}", v.detail);
        // Passing: inside the epsilon, or the expected ordering.
        assert!(fairness_inversion(0.50, 0.51).is_none());
        assert!(fairness_inversion(0.50, 0.40).is_none());
    }

    #[test]
    fn from_report_extracts_a_consistent_view() {
        let report = fairswap_core::SimulationBuilder::new()
            .nodes(120)
            .bucket_size(4)
            .files(25)
            .seed(11)
            .build()
            .unwrap()
            .run();
        let m = RunMetrics::from_report(&report);
        assert_eq!(m.mechanism, "swarm");
        assert!(m.requests > 0);
        assert!((0.0..=1.0).contains(&m.drop_rate()));
        assert!((0.0..=1.0).contains(&m.cache_hit_rate()));
        // A real default-policy run satisfies every oracle.
        assert_eq!(check_report(&m), Vec::new());
    }

    #[test]
    fn durability_stall_needs_active_repair_and_a_long_span() {
        // Violating: a region unreachable for most of the run while the
        // repair loop was supposed to be fixing it.
        let mut m = clean();
        m.repair_wait_max = 80;
        m.unreachable = 3;
        let v = durability_stall(&m).expect("stalled repair");
        assert_eq!(v.oracle, "durability-stall");
        assert!(v.detail.contains("80 of 100"), "{}", v.detail);
        // Passing: the same span without repair traffic is the expected
        // monitor-arm behavior, not a bug.
        m.repair_active = false;
        assert!(durability_stall(&m).is_none());
        // Passing: too short a run for the backoff schedule to settle.
        let mut m = clean();
        m.repair_wait_max = 20;
        m.steps = 30;
        assert!(durability_stall(&m).is_none());
        // Passing: waits inside the half-run budget.
        assert!(durability_stall(&clean()).is_none());
    }

    #[test]
    fn catalog_names_are_stable() {
        assert_eq!(ORACLE_NAMES.len(), 6);
        assert!(conservation_applies(MechanismKind::Swarm));
        assert!(conservation_applies(MechanismKind::PayAllHops));
        assert!(!conservation_applies(MechanismKind::TitForTat));
    }
}
