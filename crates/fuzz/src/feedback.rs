//! Novelty feedback: the coarse-binned metric grid.
//!
//! Classic coverage-guided fuzzers keep an input iff it reaches a new
//! branch. A simulation has no branches worth counting, but it has
//! *behavior*: where a run lands in (income Gini, drop rate, mean hops,
//! cache-hit rate) space says far more about what the spec exercises
//! than any code path does. The grid bins that 4-dimensional space
//! coarsely — [`GINI_BINS`] × [`RATE_BINS`] × hop integer bins ×
//! [`RATE_BINS`] cells — and a candidate spec joins the corpus iff its
//! run lights a cell no earlier run has lit.
//!
//! Coarseness is the point: fine bins would admit near-duplicates of
//! existing corpus entries; these bins only admit specs whose dynamics
//! differ at the "tells a different story in the paper's figures" level.

use std::collections::BTreeSet;

use crate::oracle::RunMetrics;

/// Number of equal-width bins over Gini's `[0, 1]` range.
pub const GINI_BINS: u8 = 10;
/// Number of equal-width bins over the drop-rate / cache-hit `[0, 1]` range.
pub const RATE_BINS: u8 = 10;
/// Mean-hop counts at or above this land in one saturated bin.
pub const MAX_HOP_BIN: u8 = 24;

/// One cell of the behavior grid:
/// `(gini bin, drop-rate bin, mean-hops bin, cache-hit bin)`.
pub type Cell = (u8, u8, u8, u8);

fn bin_unit(value: f64, bins: u8) -> u8 {
    // NaN and negatives collapse into bin 0; ≥ 1.0 saturates at the top.
    let scaled = (value * f64::from(bins)).floor();
    if scaled.is_finite() && scaled > 0.0 {
        (scaled as u8).min(bins - 1)
    } else {
        0
    }
}

/// Maps one run's metrics to its grid cell.
pub fn cell_for(m: &RunMetrics) -> Cell {
    let hops = if m.mean_hops.is_finite() && m.mean_hops > 0.0 {
        (m.mean_hops.floor() as u8).min(MAX_HOP_BIN)
    } else {
        0
    };
    (
        bin_unit(m.f2_gini, GINI_BINS),
        bin_unit(m.drop_rate(), RATE_BINS),
        hops,
        bin_unit(m.cache_hit_rate(), RATE_BINS),
    )
}

/// The set of behavior cells lit so far. `BTreeSet` keeps iteration — and
/// therefore every report derived from it — deterministic.
#[derive(Debug, Clone, Default)]
pub struct MetricGrid {
    lit: BTreeSet<Cell>,
}

impl MetricGrid {
    /// An empty grid.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `cell`; returns `true` iff it was novel.
    pub fn observe(&mut self, cell: Cell) -> bool {
        self.lit.insert(cell)
    }

    /// Number of distinct cells lit.
    pub fn len(&self) -> usize {
        self.lit.len()
    }

    /// Whether no cell has been lit yet.
    pub fn is_empty(&self) -> bool {
        self.lit.is_empty()
    }

    /// The lit cells in deterministic (lexicographic) order.
    pub fn cells(&self) -> impl Iterator<Item = Cell> + '_ {
        self.lit.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(gini: f64, drop: f64, hops: f64, cache: f64) -> RunMetrics {
        RunMetrics {
            bits: 16,
            mechanism: "swarm",
            tx_cost_zero: true,
            free_rider_fraction: 0.0,
            max_detours: 0,
            income_sum: 0.0,
            settlement_volume: 0,
            settlement_tx_cost: 0,
            net_income_sum: 0,
            forced_settlements: 0,
            requests: 1000,
            stuck: (drop * 1000.0) as u64,
            capacity_blocked: 0,
            delivered_routes: 1000 - (drop * 1000.0) as u64,
            max_hops: hops.ceil() as usize,
            mean_hops: hops,
            f2_gini: gini,
            cache_hits: (cache * 1000.0) as u64,
            repair_active: false,
            steps: 60,
            repair_wait_max: 0,
            unreachable: 0,
        }
    }

    #[test]
    fn binning_is_coarse_and_saturating() {
        assert_eq!(cell_for(&metrics(0.0, 0.0, 0.0, 0.0)), (0, 0, 0, 0));
        assert_eq!(cell_for(&metrics(0.61, 0.1, 2.4, 0.02)), (6, 1, 2, 0));
        // Values at or past the top of the range saturate, never overflow.
        assert_eq!(
            cell_for(&metrics(1.0, 1.0, 99.0, 1.0)),
            (9, 9, MAX_HOP_BIN, 9)
        );
        // Tiny perturbations stay in the same cell — near-duplicates of a
        // corpus entry are not novel.
        assert_eq!(
            cell_for(&metrics(0.611, 0.101, 2.41, 0.021)),
            cell_for(&metrics(0.615, 0.105, 2.45, 0.025))
        );
    }

    #[test]
    fn degenerate_metrics_fall_into_bin_zero() {
        let mut m = metrics(f64::NAN, 0.0, f64::NAN, 0.0);
        m.requests = 0; // drop_rate() and cache_hit_rate() of an empty run
        assert_eq!(cell_for(&m), (0, 0, 0, 0));
    }

    #[test]
    fn grid_reports_novelty_once() {
        let mut grid = MetricGrid::new();
        assert!(grid.is_empty());
        let a = cell_for(&metrics(0.61, 0.1, 2.4, 0.0));
        let b = cell_for(&metrics(0.21, 0.4, 5.0, 0.3));
        assert!(grid.observe(a));
        assert!(!grid.observe(a), "same cell must not be novel twice");
        assert!(grid.observe(b));
        assert_eq!(grid.len(), 2);
        let cells: Vec<_> = grid.cells().collect();
        assert_eq!(cells, {
            let mut sorted = vec![a, b];
            sorted.sort_unstable();
            sorted
        });
    }
}
