//! `SimSpec` mutators: one perturbed axis per candidate.
//!
//! Each mutation picks exactly one axis of the spec and replaces its
//! value with a draw from a curated, *always-valid* set — so every
//! candidate passes [`SimSpec::validate`] by construction and the
//! feedback loop never wastes executor time on rejects. Single-axis
//! mutation also keeps corpus entries explainable: a kept spec differs
//! from its parent in one named dimension, which is what the corpus
//! filename records.
//!
//! Values are deliberately quick-dim (≤ [`NODES`] nodes, ≤ 200 files):
//! the campaign runs every candidate, so the sets bound the cost of an
//! iteration. Dimension mutations that could orphan a dependent value
//! (a scenario shock step past a shrunken `files`, a repair prefix wider
//! than a shrunken `bits`) are re-clamped by [`reconcile`], which is run
//! by [`mutate_spec`] after every mutation.

use fairswap_churn::{ChurnConfig, LifetimeDist};
use fairswap_core::{MechanismKind, RepairPolicy, RepairSource, ScenarioKind, SimSpec};
use fairswap_kademlia::BucketSizing;
use fairswap_storage::{CachePolicy, RoutePolicy};
use fairswap_workload::ChunkDist;
use rand::seq::SliceRandom;
use rand::Rng;

/// Overlay sizes a candidate may use.
pub const NODES: [usize; 6] = [60, 100, 150, 220, 300, 500];
/// Address-space widths a candidate may use.
pub const BITS: [u32; 4] = [12, 14, 16, 18];
/// Bucket sizes a candidate may use (spans the paper's k = 4 vs k = 20).
pub const BUCKET_K: [usize; 7] = [2, 3, 4, 8, 12, 20, 32];
/// File counts (timesteps) a candidate may use.
pub const FILES: [u64; 4] = [30, 60, 100, 200];
/// Originator fractions a candidate may use.
pub const ORIGINATORS: [f64; 3] = [0.2, 0.5, 1.0];
/// Churn rates for the rate-parameterized churn mutation.
pub const CHURN_RATES: [f64; 5] = [0.01, 0.02, 0.05, 0.1, 0.2];
/// Zipf exponents for the skewed-popularity mutation.
pub const ZIPF_EXPONENTS: [f64; 3] = [0.6, 0.9, 1.2];
/// Zipf catalog sizes for the skewed-popularity mutation.
pub const ZIPF_CATALOGS: [usize; 3] = [500, 2000, 10_000];
/// Shock fractions for departure / flash-crowd scenarios, within the
/// validator's `(0, 0.5]`.
pub const SHOCK_FRACTIONS: [f64; 3] = [0.1, 0.25, 0.5];
/// Free-rider fractions for the economics mutation.
pub const FREE_RIDERS: [f64; 3] = [0.0, 0.1, 0.25];
/// Per-step budgets of the slow tier in heterogeneity scenarios.
pub const SLOW_BUDGETS: [u64; 3] = [1, 2, 4];
/// Per-step budgets of the fast tier in heterogeneity scenarios.
pub const FAST_BUDGETS: [u64; 3] = [8, 16, 32];
/// Monitored-region widths for the durability mutations.
pub const REPAIR_REGIONS: [u32; 3] = [4, 6, 8];
/// Retry limits for the download-retry mutation (0 = retries off).
pub const RETRY_LIMITS: [u32; 4] = [0, 1, 2, 4];
/// Base backoffs (in steps) for the download-retry mutation.
pub const RETRY_BACKOFFS: [u64; 3] = [1, 2, 8];

/// The mutation axes, in the order [`mutate_spec`] indexes them. The
/// chosen axis name becomes part of the corpus entry's filename.
pub const AXES: [&str; 7] = [
    "topology",
    "workload",
    "churn",
    "scenario",
    "policies",
    "popularity",
    "economics",
];

fn pick<T: Copy>(rng: &mut impl Rng, set: &[T]) -> T {
    *set.choose(rng).expect("curated sets are non-empty")
}

fn mutate_topology(spec: &mut SimSpec, rng: &mut impl Rng) {
    match rng.gen_range(0..3u8) {
        0 => spec.topology.nodes = pick(rng, &NODES),
        1 => spec.topology.bits = pick(rng, &BITS),
        _ => spec.topology.bucket_sizing = BucketSizing::uniform(pick(rng, &BUCKET_K)),
    }
}

fn mutate_workload(spec: &mut SimSpec, rng: &mut impl Rng) {
    if rng.gen_bool(0.5) {
        spec.workload.files = pick(rng, &FILES);
    } else {
        spec.workload.originator_fraction = pick(rng, &ORIGINATORS);
    }
}

fn lifetime(rng: &mut impl Rng) -> LifetimeDist {
    match rng.gen_range(0..3u8) {
        0 => LifetimeDist::Exponential {
            mean: pick(rng, &[20.0, 50.0, 100.0]),
        },
        1 => LifetimeDist::Weibull {
            shape: pick(rng, &[0.5, 1.5]),
            scale: pick(rng, &[30.0, 80.0]),
        },
        _ => LifetimeDist::Constant {
            steps: pick(rng, &[25.0, 60.0]),
        },
    }
}

fn mutate_churn(spec: &mut SimSpec, rng: &mut impl Rng) {
    spec.dynamics.churn = match rng.gen_range(0..3u8) {
        // Back to the paper's static overlay.
        0 => None,
        // The canonical rate parameterization.
        1 => Some(
            ChurnConfig::from_rate(pick(rng, &CHURN_RATES)).expect("curated churn rates are valid"),
        ),
        // Fully custom lifetime distributions.
        _ => Some(ChurnConfig {
            session: lifetime(rng),
            downtime: lifetime(rng),
            start_step: 1,
            min_live_fraction: 0.25,
        }),
    };
}

fn mutate_scenario(spec: &mut SimSpec, rng: &mut impl Rng) {
    let files = spec.workload.files;
    let mid = (files / 2).max(1);
    spec.dynamics.scenario = match rng.gen_range(0..5u8) {
        0 => None,
        1 => Some(ScenarioKind::TargetedDeparture {
            at_step: mid,
            top_fraction: pick(rng, &SHOCK_FRACTIONS),
        }),
        2 => Some(ScenarioKind::FlashCrowd {
            at_step: mid,
            join_fraction: pick(rng, &SHOCK_FRACTIONS),
        }),
        3 => Some(ScenarioKind::RegionalOutage {
            at_step: mid,
            region_bits: rng.gen_range(1..=3u32),
            rejoin_after: if rng.gen_bool(0.5) {
                Some(((files - mid) / 2).max(1))
            } else {
                None
            },
        }),
        // The capacity-tier axis: a two-tier bandwidth distribution.
        _ => Some(ScenarioKind::Heterogeneity {
            slow_fraction: pick(rng, &[0.1, 0.3, 0.5]),
            slow_budget: pick(rng, &SLOW_BUDGETS),
            fast_budget: pick(rng, &FAST_BUDGETS),
        }),
    };
}

fn mutate_policies(spec: &mut SimSpec, rng: &mut impl Rng) {
    match rng.gen_range(0..4u8) {
        0 => {
            spec.policies.route = if rng.gen_bool(0.4) {
                RoutePolicy::Greedy
            } else {
                RoutePolicy::CapacityDetour {
                    max_detours: pick(rng, &[1, 2, 4]),
                }
            };
        }
        1 => {
            spec.policies.cache = match rng.gen_range(0..4u8) {
                0 => CachePolicy::None,
                1 => CachePolicy::Lru {
                    capacity: pick(rng, &[64, 256]),
                },
                2 => CachePolicy::Lfu { capacity: 128 },
                _ => CachePolicy::Ttl {
                    capacity: 64,
                    ttl: 500,
                },
            };
        }
        2 => {
            spec.policies.repair = match rng.gen_range(0..4u8) {
                0 => RepairPolicy::None,
                1 => RepairPolicy::Monitor {
                    neighborhood_bits: pick(rng, &REPAIR_REGIONS),
                },
                _ => RepairPolicy::ReReplicate {
                    neighborhood_bits: pick(rng, &REPAIR_REGIONS),
                },
            };
            spec.policies.repair_source = if rng.gen_bool(0.5) {
                RepairSource::Replica
            } else {
                RepairSource::Originator
            };
        }
        _ => {
            spec.policies.max_retries = pick(rng, &RETRY_LIMITS);
            spec.policies.retry_backoff = pick(rng, &RETRY_BACKOFFS);
        }
    }
}

fn mutate_popularity(spec: &mut SimSpec, rng: &mut impl Rng) {
    spec.workload.chunk_dist = if rng.gen_bool(0.3) {
        ChunkDist::Uniform
    } else {
        ChunkDist::Zipf {
            catalog: pick(rng, &ZIPF_CATALOGS),
            exponent: pick(rng, &ZIPF_EXPONENTS),
        }
    };
}

fn mutate_economics(spec: &mut SimSpec, rng: &mut impl Rng) {
    if rng.gen_bool(0.7) {
        spec.economics.mechanism = match rng.gen_range(0..5u8) {
            0 => MechanismKind::Swarm,
            1 => MechanismKind::PayAllHops,
            2 => MechanismKind::TitForTat,
            3 => MechanismKind::EffortBased {
                budget_per_tick: 500,
            },
            _ => MechanismKind::ProofOfBandwidth { mint_per_chunk: 10 },
        };
    } else {
        spec.economics.free_rider_fraction = pick(rng, &FREE_RIDERS);
    }
}

/// Re-clamps values that a dimension mutation may have orphaned, keeping
/// the invariant that every mutated spec validates:
///
/// * scenario shock steps stay in `1..=files`, and a regional outage's
///   rejoin still lands inside the run;
/// * a regional outage's `region_bits` and a repair policy's
///   `neighborhood_bits` stay within the (possibly shrunken) `bits`.
pub fn reconcile(spec: &mut SimSpec) {
    let files = spec.workload.files;
    let bits = spec.topology.bits;
    if let Some(scenario) = &mut spec.dynamics.scenario {
        match scenario {
            ScenarioKind::TargetedDeparture { at_step, .. }
            | ScenarioKind::FlashCrowd { at_step, .. } => {
                *at_step = (*at_step).clamp(1, files);
            }
            ScenarioKind::RegionalOutage {
                at_step,
                region_bits,
                rejoin_after,
            } => {
                *at_step = (*at_step).clamp(1, files);
                *region_bits = (*region_bits).clamp(1, bits);
                if let Some(delay) = rejoin_after {
                    let room = files - *at_step;
                    if room == 0 {
                        *rejoin_after = None;
                    } else {
                        *delay = (*delay).clamp(1, room);
                    }
                }
            }
            ScenarioKind::Heterogeneity { .. } => {}
        }
    }
    match &mut spec.policies.repair {
        RepairPolicy::None => {}
        RepairPolicy::Monitor { neighborhood_bits }
        | RepairPolicy::ReReplicate { neighborhood_bits } => {
            // A monitored region must stay strictly narrower than the
            // space; bits >= 12 for every curated draw, so 1..=bits-1 is
            // never empty.
            *neighborhood_bits = (*neighborhood_bits).clamp(1, bits - 1);
        }
    }
}

/// Mutates one axis of `parent`, returning the candidate and the name of
/// the mutated axis (an entry of [`AXES`]). The candidate gets a fresh
/// master seed drawn from `rng`, so two candidates with identical knobs
/// still explore different random topologies and workloads.
pub fn mutate_spec(parent: &SimSpec, rng: &mut impl Rng) -> (SimSpec, &'static str) {
    let mut spec = parent.clone();
    spec.seed = rng.gen();
    let axis = AXES[rng.gen_range(0..AXES.len())];
    match axis {
        "topology" => mutate_topology(&mut spec, rng),
        "workload" => mutate_workload(&mut spec, rng),
        "churn" => mutate_churn(&mut spec, rng),
        "scenario" => mutate_scenario(&mut spec, rng),
        "policies" => mutate_policies(&mut spec, rng),
        "popularity" => mutate_popularity(&mut spec, rng),
        "economics" => mutate_economics(&mut spec, rng),
        _ => unreachable!("axis drawn from AXES"),
    }
    reconcile(&mut spec);
    (spec, axis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairswap_simcore::rng::derive_rng;

    fn quick_parent() -> SimSpec {
        let mut spec = SimSpec::paper_defaults();
        spec.topology.nodes = 150;
        spec.workload.files = 60;
        spec
    }

    #[test]
    fn mutants_always_validate() {
        let parent = quick_parent();
        let mut rng = derive_rng(0xF022, 0, 0);
        for _ in 0..500 {
            let (candidate, axis) = mutate_spec(&parent, &mut rng);
            assert!(AXES.contains(&axis));
            candidate
                .validate()
                .unwrap_or_else(|e| panic!("axis {axis} produced an invalid spec: {e}"));
        }
    }

    #[test]
    fn chained_mutation_stays_valid() {
        // Mutations compose: dimension shrinks must re-clamp dependent
        // scenario / repair parameters.
        let mut spec = quick_parent();
        let mut rng = derive_rng(0xF023, 0, 0);
        for step in 0..300 {
            let (next, axis) = mutate_spec(&spec, &mut rng);
            next.validate()
                .unwrap_or_else(|e| panic!("step {step} axis {axis}: {e}"));
            spec = next;
        }
    }

    #[test]
    fn reconcile_clamps_orphaned_dimensions() {
        let mut spec = quick_parent();
        spec.workload.files = 10;
        spec.topology.bits = 12;
        spec.dynamics.scenario = Some(ScenarioKind::RegionalOutage {
            at_step: 50,
            region_bits: 20,
            rejoin_after: Some(40),
        });
        spec.policies.repair = RepairPolicy::ReReplicate {
            neighborhood_bits: 16,
        };
        reconcile(&mut spec);
        assert!(spec.validate().is_ok());
        match spec.dynamics.scenario.unwrap() {
            ScenarioKind::RegionalOutage {
                at_step,
                region_bits,
                rejoin_after,
            } => {
                assert_eq!(at_step, 10);
                assert_eq!(region_bits, 12);
                // No room left after a shock at the final step.
                assert_eq!(rejoin_after, None);
            }
            other => panic!("scenario kind changed: {other:?}"),
        }
        assert_eq!(
            spec.policies.repair,
            RepairPolicy::ReReplicate {
                neighborhood_bits: 11
            }
        );
    }

    #[test]
    fn mutation_is_deterministic_per_rng_stream() {
        let parent = quick_parent();
        let (a, axis_a) = mutate_spec(&parent, &mut derive_rng(7, 3, 0));
        let (b, axis_b) = mutate_spec(&parent, &mut derive_rng(7, 3, 0));
        assert_eq!(a, b);
        assert_eq!(axis_a, axis_b);
        // A different stream draws a different candidate seed.
        let (c, _) = mutate_spec(&parent, &mut derive_rng(7, 4, 0));
        assert_ne!(a.seed, c.seed);
    }

    #[test]
    fn mutation_changes_exactly_one_axis_plus_seed() {
        let parent = quick_parent();
        let mut rng = derive_rng(0xF024, 0, 0);
        for _ in 0..100 {
            let (candidate, _) = mutate_spec(&parent, &mut rng);
            let groups_changed = [
                candidate.topology != parent.topology,
                candidate.workload != parent.workload,
                candidate.economics != parent.economics,
                candidate.dynamics != parent.dynamics,
                candidate.policies != parent.policies,
            ]
            .iter()
            .filter(|&&changed| changed)
            .count();
            // At most one group differs (a draw may land on the parent's
            // current value, changing nothing but the seed).
            assert!(groups_changed <= 1, "{candidate:?}");
        }
    }
}
