//! The campaign driver: mutate → run → judge → keep, deterministically.
//!
//! A campaign is fully determined by its master seed and iteration
//! count. The scheduling RNG lives in its own derivation domain
//! ([`domain::FUZZ`]) with one sub-stream per iteration
//! (`derive_rng(campaign_seed, iteration, 0)`), so iteration `i` draws
//! the same parent, axis and candidate seed no matter what any other
//! iteration did — and the whole campaign replays bit-identically from
//! `--seed`/`--iters` alone. A `--time-budget` cuts a campaign short by
//! wall clock and therefore trades that guarantee away; seed+iters runs
//! are the reproducible ones.
//!
//! Every iteration executes the candidate spec **plus its k = 4 and
//! k = 20 fairness twins** (same spec, only the bucket size swapped) on
//! the shared [`Executor`], so the fairness-inversion oracle always has
//! both ends of the paper's headline comparison. Candidates whose run
//! lights a novel [`MetricGrid`] cell — or trips any oracle — join the
//! corpus under `fuzz-<iteration>-<axis>`; oracle breaches additionally
//! become [`Finding`]s in the campaign report.

use std::time::{Duration, Instant};

use fairswap_core::{run_jobs, Executor, SimJob, SimSpec};
use fairswap_kademlia::BucketSizing;
use fairswap_simcore::rng::{derive_rng, domain, sub_seed};
use rand::Rng;
use serde::Serialize;

use crate::corpus::Corpus;
use crate::error::FuzzError;
use crate::feedback::{cell_for, MetricGrid};
use crate::mutate::mutate_spec;
use crate::oracle::{check_report, fairness_inversion, RunMetrics, Violation};

/// Bucket sizes of the fairness-twin runs (the paper's comparison).
pub const TWIN_KS: [usize; 2] = [4, 20];

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; the scheduling stream is forked from it through
    /// [`domain::FUZZ`].
    pub seed: u64,
    /// Number of mutation iterations after the seed-corpus priming pass.
    pub iters: u64,
    /// Optional wall-clock cutoff. Cutting by time breaks bit-for-bit
    /// reproducibility across machines; leave `None` for reproducible
    /// campaigns.
    pub time_budget: Option<Duration>,
}

impl FuzzConfig {
    /// A small reproducible campaign (no time budget).
    pub fn new(seed: u64, iters: u64) -> Self {
        Self {
            seed,
            iters,
            time_budget: None,
        }
    }
}

/// One oracle breach, tied to the corpus entry that replays it.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Finding {
    /// Iteration the breach surfaced at (0 = seed-corpus priming).
    pub iteration: u64,
    /// Corpus entry name whose spec reproduces the breach.
    pub entry: String,
    /// The violated invariant.
    pub violation: Violation,
}

/// Everything a finished campaign produced.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// Seed corpus plus every kept candidate, in discovery order.
    pub corpus: Corpus,
    /// Every oracle breach, in discovery order.
    pub findings: Vec<Finding>,
    /// Mutation iterations actually executed (< `iters` only under a
    /// time budget).
    pub iterations: u64,
    /// Simulations executed, twins included.
    pub runs: u64,
    /// Distinct behavior-grid cells lit.
    pub cells: usize,
}

impl FuzzOutcome {
    /// The findings report as deterministic JSON (an array in discovery
    /// order).
    ///
    /// # Errors
    ///
    /// Propagates serialization failures as [`FuzzError::Core`] — not
    /// reachable for the string-only fields involved.
    pub fn findings_json(&self) -> Result<String, FuzzError> {
        serde_json::to_string(&self.findings).map_err(|e| FuzzError::Corpus {
            file: "findings.json".into(),
            message: e.to_string(),
        })
    }
}

/// One evaluated candidate: its metrics and any violations.
struct Eval {
    metrics: RunMetrics,
    violations: Vec<Violation>,
    runs: u64,
}

/// Runs `spec` plus its fairness twins and judges the results.
fn evaluate(executor: &Executor, spec: &SimSpec) -> Result<Eval, FuzzError> {
    let base = spec.to_config();
    // The candidate is job 0; twins reuse it when the bucket size already
    // matches (the common case for k = 4 parents).
    let mut jobs = vec![SimJob::new(base.clone())];
    let mut twin_slots = [0usize; TWIN_KS.len()];
    for (slot, k) in TWIN_KS.iter().enumerate() {
        let sizing = BucketSizing::uniform(*k);
        if base.bucket_sizing == sizing {
            twin_slots[slot] = 0;
        } else {
            let mut twin = base.clone();
            twin.bucket_sizing = sizing;
            twin_slots[slot] = jobs.len();
            jobs.push(SimJob::new(twin));
        }
    }
    let runs = jobs.len() as u64;
    let reports = run_jobs(executor, jobs)?;
    let metrics = RunMetrics::from_report(&reports[0]);
    let mut violations = check_report(&metrics);
    let gini_k4 = reports[twin_slots[0]].f2_income_gini();
    let gini_k20 = reports[twin_slots[1]].f2_income_gini();
    violations.extend(fairness_inversion(gini_k4, gini_k20));
    Ok(Eval {
        metrics,
        violations,
        runs,
    })
}

/// Runs a campaign on `executor`, reporting progress (done, total
/// scheduled units) through `progress`.
///
/// # Errors
///
/// Propagates engine failures as [`FuzzError::Core`]. Invalid specs
/// cannot occur: the seed corpus validates by construction and mutants
/// are drawn from curated always-valid sets.
pub fn run_campaign(
    executor: &Executor,
    cfg: &FuzzConfig,
    progress: &mut dyn FnMut(u64, u64),
) -> Result<FuzzOutcome, FuzzError> {
    let started = Instant::now();
    let campaign_seed = sub_seed(cfg.seed, domain::FUZZ);
    let mut corpus = Corpus::seeded();
    let mut grid = MetricGrid::new();
    let mut findings = Vec::new();
    let mut runs = 0u64;
    let total = corpus.len() as u64 + cfg.iters;
    let mut done = 0u64;

    // Priming pass: light the grid with the seed corpus's behavior and
    // oracle-check the seeds themselves (iteration 0).
    for entry in corpus.entries().to_vec() {
        let eval = evaluate(executor, &entry.spec)?;
        runs += eval.runs;
        grid.observe(cell_for(&eval.metrics));
        findings.extend(eval.violations.into_iter().map(|violation| Finding {
            iteration: 0,
            entry: entry.name.clone(),
            violation,
        }));
        done += 1;
        progress(done, total);
    }

    let mut iterations = 0u64;
    for i in 0..cfg.iters {
        if let Some(budget) = cfg.time_budget {
            if started.elapsed() >= budget {
                break;
            }
        }
        // Iteration streams are numbered from 1; 0 is the priming pass.
        let mut rng = derive_rng(campaign_seed, (i + 1) as usize, 0);
        let parent = &corpus.entries()[rng.gen_range(0..corpus.len())].spec;
        let (candidate, axis) = mutate_spec(parent, &mut rng);
        let eval = evaluate(executor, &candidate)?;
        runs += eval.runs;
        let novel = grid.observe(cell_for(&eval.metrics));
        // Oracle breaches are always kept — a finding without its spec
        // is not replayable — novelty admits the rest.
        if novel || !eval.violations.is_empty() {
            let name = format!("fuzz-{:05}-{axis}", i + 1);
            findings.extend(eval.violations.into_iter().map(|violation| Finding {
                iteration: i + 1,
                entry: name.clone(),
                violation,
            }));
            corpus.push(name, candidate);
        }
        iterations = i + 1;
        done += 1;
        progress(done, total);
    }

    Ok(FuzzOutcome {
        corpus,
        findings,
        iterations,
        runs,
        cells: grid.len(),
    })
}

/// Outcome of a corpus minimization pass.
#[derive(Debug, Clone)]
pub struct MinimizeOutcome {
    /// The surviving entries, in original order.
    pub corpus: Corpus,
    /// Names of the dropped entries, in original order.
    pub dropped: Vec<String>,
    /// Simulations executed, twins included.
    pub runs: u64,
    /// Distinct behavior-grid cells the kept entries light.
    pub cells: usize,
}

/// Replays `corpus` front to back and keeps each entry iff it lights a
/// behavior-grid cell no *kept* earlier entry lit, or trips an oracle
/// (a finding's spec must stay replayable regardless of its cell).
/// Deterministic: entry order is the load order and every run is a pure
/// function of its spec, so the same corpus minimizes to the same subset
/// at any thread count.
///
/// # Errors
///
/// Propagates engine failures as [`FuzzError::Core`].
pub fn minimize_corpus(
    executor: &Executor,
    corpus: &Corpus,
    progress: &mut dyn FnMut(u64, u64),
) -> Result<MinimizeOutcome, FuzzError> {
    let mut grid = MetricGrid::new();
    let mut kept = Corpus::new();
    let mut dropped = Vec::new();
    let mut runs = 0u64;
    let total = corpus.len() as u64;
    for (done, entry) in corpus.entries().iter().enumerate() {
        let eval = evaluate(executor, &entry.spec)?;
        runs += eval.runs;
        if grid.observe(cell_for(&eval.metrics)) || !eval.violations.is_empty() {
            kept.push(entry.name.clone(), entry.spec.clone());
        } else {
            dropped.push(entry.name.clone());
        }
        progress(done as u64 + 1, total);
    }
    Ok(MinimizeOutcome {
        corpus: kept,
        dropped,
        runs,
        cells: grid.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn campaign(seed: u64, iters: u64, threads: usize) -> FuzzOutcome {
        let executor = Executor::new(threads);
        run_campaign(&executor, &FuzzConfig::new(seed, iters), &mut |_, _| {}).unwrap()
    }

    #[test]
    fn campaigns_are_bit_reproducible_across_thread_counts() {
        let a = campaign(0xF0CC, 3, 1);
        let b = campaign(0xF0CC, 3, 2);
        assert_eq!(a.corpus, b.corpus);
        assert_eq!(a.findings, b.findings);
        assert_eq!(a.cells, b.cells);
        assert_eq!(a.runs, b.runs);
        assert_eq!(a.iterations, 3);
        // The seed corpus always survives into the output corpus.
        assert!(a.corpus.len() >= Corpus::seeded().len());
        // Priming lights at least one cell per distinct seed behavior.
        assert!(a.cells >= 1);
    }

    #[test]
    fn different_seeds_schedule_different_candidates() {
        let a = campaign(0xF0CC, 2, 1);
        let b = campaign(0xF0CD, 2, 1);
        // The kept corpora (beyond the shared seeds) differ in spec
        // content with overwhelming probability: candidate master seeds
        // are 64-bit draws from differently-keyed streams.
        let specs = |o: &FuzzOutcome| {
            o.corpus
                .entries()
                .iter()
                .map(|e| e.spec.seed)
                .collect::<Vec<_>>()
        };
        assert_ne!(specs(&a), specs(&b));
    }

    #[test]
    fn zero_time_budget_still_primes_but_runs_no_iterations() {
        let executor = Executor::new(1);
        let cfg = FuzzConfig {
            seed: 1,
            iters: 50,
            time_budget: Some(Duration::ZERO),
        };
        let mut ticks = 0u64;
        let outcome = run_campaign(&executor, &cfg, &mut |done, total| {
            ticks = done;
            assert_eq!(total, Corpus::seeded().len() as u64 + 50);
        })
        .unwrap();
        assert_eq!(outcome.iterations, 0);
        // No mutation iterations ran, so the corpus is exactly the seeds.
        assert_eq!(outcome.corpus, Corpus::seeded());
        assert_eq!(ticks, Corpus::seeded().len() as u64);
    }

    #[test]
    fn minimization_drops_covered_entries_deterministically() {
        // A corpus with an exact behavioral duplicate: the clone lands in
        // the same grid cell as the original and must be dropped, while
        // the original (first in load order) survives.
        let mut corpus = Corpus::seeded();
        let original = corpus.entries()[0].clone();
        corpus.push("zz-duplicate".into(), original.spec.clone());
        let minimize = |threads: usize| {
            let executor = Executor::new(threads);
            minimize_corpus(&executor, &corpus, &mut |_, _| {}).unwrap()
        };
        let a = minimize(1);
        assert!(a.dropped.contains(&"zz-duplicate".to_string()), "{a:?}");
        assert!(a.corpus.entries().iter().any(|e| e.name == original.name));
        assert_eq!(a.corpus.len() + a.dropped.len(), corpus.len());
        assert_eq!(a.cells, a.corpus.len(), "kept entries light distinct cells");
        // Kept entries preserve their original relative order.
        let positions: Vec<usize> = a
            .corpus
            .entries()
            .iter()
            .map(|kept| {
                corpus
                    .entries()
                    .iter()
                    .position(|e| e.name == kept.name)
                    .unwrap()
            })
            .collect();
        assert!(positions.windows(2).all(|w| w[0] < w[1]));
        // Byte-identical at another thread count.
        let b = minimize(2);
        assert_eq!(a.corpus, b.corpus);
        assert_eq!(a.dropped, b.dropped);
        assert_eq!(a.runs, b.runs);
    }

    #[test]
    fn findings_json_is_deterministic_and_parseable() {
        let outcome = campaign(0xF0CE, 2, 1);
        let json = outcome.findings_json().unwrap();
        assert_eq!(json, campaign(0xF0CE, 2, 1).findings_json().unwrap());
        let value: serde::Value = serde_json::from_str(&json).unwrap();
        assert!(value.as_array().is_some());
    }
}
