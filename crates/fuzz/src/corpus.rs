//! The replayable corpus: named `SimSpec`s persisted one-per-file.
//!
//! A corpus directory holds `<name>.json` files, each the canonical
//! [`SimSpec::to_json`] wire form plus a trailing newline — exactly the
//! shape `fairswap run --config <file>` executes, so every corpus entry
//! (seed or machine-found) replays verbatim through the ordinary CLI
//! with no fuzzer involved. Loading sorts by filename, so a directory
//! round-trips to the same in-memory corpus on every machine.

use std::fs;
use std::io;
use std::path::Path;

use fairswap_churn::ChurnConfig;
use fairswap_core::{CachePolicy, MechanismKind, RoutePolicy, ScenarioKind, SimSpec};
use fairswap_workload::ChunkDist;

use crate::error::FuzzError;

/// One corpus entry: a spec and its stable name (the filename stem).
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusEntry {
    /// Filename stem, e.g. `seed-00-paper-quick` or `fuzz-00042-scenario`.
    pub name: String,
    /// The replayable spec.
    pub spec: SimSpec,
}

impl CorpusEntry {
    /// The file contents this entry persists as.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures (non-finite floats) as
    /// [`FuzzError::Core`].
    pub fn to_file_contents(&self) -> Result<String, FuzzError> {
        Ok(format!("{}\n", self.spec.to_json()?))
    }
}

/// An ordered collection of corpus entries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Corpus {
    entries: Vec<CorpusEntry>,
}

impl Corpus {
    /// An empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// The hand-written seed corpus every campaign starts from: six
    /// quick-dimension specs spanning the spec's behavioral regimes
    /// (static baseline, churn, skewed popularity, a scripted shock,
    /// the policy layer, and capacity tiers). `tests/fixtures/corpus/`
    /// pins these byte-for-byte.
    pub fn seeded() -> Self {
        let quick = |seed: u64| {
            let mut spec = SimSpec::paper_defaults();
            spec.seed = seed;
            spec.topology.nodes = 150;
            spec.workload.files = 60;
            spec
        };

        let baseline = quick(0xFA12);

        let mut churn = quick(0xFA13);
        churn.dynamics.churn =
            Some(ChurnConfig::from_rate(0.05).expect("0.05 is a valid churn rate"));

        let mut zipf = quick(0xFA14);
        zipf.workload.chunk_dist = ChunkDist::Zipf {
            catalog: 2000,
            exponent: 0.9,
        };
        zipf.workload.originator_fraction = 0.2;

        let mut flash = quick(0xFA15);
        flash.dynamics.scenario = Some(ScenarioKind::FlashCrowd {
            at_step: 30,
            join_fraction: 0.25,
        });

        let mut policies = quick(0xFA16);
        policies.policies.route = RoutePolicy::CapacityDetour { max_detours: 2 };
        policies.policies.cache = CachePolicy::Lru { capacity: 128 };

        let mut tiers = quick(0xFA17);
        tiers.dynamics.scenario = Some(ScenarioKind::Heterogeneity {
            slow_fraction: 0.3,
            slow_budget: 2,
            fast_budget: 16,
        });
        tiers.economics.mechanism = MechanismKind::EffortBased {
            budget_per_tick: 500,
        };

        let named = [
            ("seed-00-paper-quick", baseline),
            ("seed-01-churn", churn),
            ("seed-02-zipf", zipf),
            ("seed-03-flash-crowd", flash),
            ("seed-04-detour-cache", policies),
            ("seed-05-capacity-tiers", tiers),
        ];
        Self {
            entries: named
                .into_iter()
                .map(|(name, spec)| CorpusEntry {
                    name: name.to_string(),
                    spec,
                })
                .collect(),
        }
    }

    /// Appends an entry.
    pub fn push(&mut self, name: String, spec: SimSpec) {
        self.entries.push(CorpusEntry { name, spec });
    }

    /// The entries, in insertion (= load) order.
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Persists every entry to `dir` (created if missing) as
    /// `<name>.json`. Existing files of the same names are overwritten;
    /// other files are left alone.
    ///
    /// # Errors
    ///
    /// I/O failures as [`FuzzError::Io`], serialization failures as
    /// [`FuzzError::Core`].
    pub fn write_to(&self, dir: &Path) -> Result<(), FuzzError> {
        fs::create_dir_all(dir).map_err(|e| io_error(dir, &e))?;
        for entry in &self.entries {
            let path = dir.join(format!("{}.json", entry.name));
            fs::write(&path, entry.to_file_contents()?).map_err(|e| io_error(&path, &e))?;
        }
        Ok(())
    }

    /// Loads every `*.json` file of `dir` (sorted by filename, so load
    /// order is machine-independent).
    ///
    /// # Errors
    ///
    /// I/O failures as [`FuzzError::Io`]; unparseable spec files as
    /// [`FuzzError::Core`] naming the offending file.
    pub fn load(dir: &Path) -> Result<Self, FuzzError> {
        let mut paths: Vec<_> = fs::read_dir(dir)
            .map_err(|e| io_error(dir, &e))?
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| io_error(dir, &e))?
            .into_iter()
            .map(|entry| entry.path())
            .filter(|path| path.extension().is_some_and(|ext| ext == "json"))
            .collect();
        paths.sort();
        let mut corpus = Self::new();
        for path in paths {
            let json = fs::read_to_string(&path).map_err(|e| io_error(&path, &e))?;
            let spec = SimSpec::from_json(&json).map_err(|e| FuzzError::Corpus {
                file: path.display().to_string(),
                message: e.to_string(),
            })?;
            let name = path
                .file_stem()
                .map(|stem| stem.to_string_lossy().into_owned())
                .unwrap_or_default();
            corpus.push(name, spec);
        }
        Ok(corpus)
    }
}

fn io_error(path: &Path, error: &io::Error) -> FuzzError {
    FuzzError::Io {
        path: path.display().to_string(),
        message: error.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_corpus_is_small_quick_and_valid() {
        let corpus = Corpus::seeded();
        assert_eq!(corpus.len(), 6);
        for entry in corpus.entries() {
            entry
                .spec
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
            assert!(entry.spec.topology.nodes <= 200, "{}", entry.name);
            assert!(entry.spec.workload.files <= 100, "{}", entry.name);
        }
        // Names are unique — they become filenames.
        let mut names: Vec<_> = corpus.entries().iter().map(|e| &e.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), corpus.len());
    }

    #[test]
    fn corpus_round_trips_through_a_directory() {
        let dir = std::env::temp_dir().join("fairswap-fuzz-corpus-roundtrip");
        let _ = fs::remove_dir_all(&dir);
        let corpus = Corpus::seeded();
        corpus.write_to(&dir).unwrap();
        let back = Corpus::load(&dir).unwrap();
        // Seed names sort in insertion order, so the round trip is exact.
        assert_eq!(back, corpus);
        // Non-spec files are ignored.
        fs::write(dir.join("findings.txt"), "not a spec").unwrap();
        assert_eq!(Corpus::load(&dir).unwrap(), corpus);
        // A malformed spec file is an error naming the file.
        fs::write(dir.join("zz-broken.json"), "{").unwrap();
        let err = Corpus::load(&dir).unwrap_err().to_string();
        assert!(err.contains("zz-broken"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn entry_contents_are_canonical_json_with_newline() {
        let corpus = Corpus::seeded();
        let entry = &corpus.entries()[0];
        let contents = entry.to_file_contents().unwrap();
        assert!(contents.ends_with('\n'));
        let spec = SimSpec::from_json(&contents).unwrap();
        assert_eq!(spec, entry.spec);
        assert_eq!(format!("{}\n", spec.to_json().unwrap()), contents);
    }

    #[test]
    fn missing_directory_is_an_io_error() {
        let err = Corpus::load(Path::new("/nonexistent/fairswap-corpus")).unwrap_err();
        assert!(matches!(err, FuzzError::Io { .. }));
    }
}
